package md

import "repro/internal/grammar"

// mipsSrc is the MIPS-flavored RISC description: load/store architecture,
// base+displacement addressing only, and the classic immediate-range
// dynamic costs — an ALU operation can take a 16-bit signed immediate, so
// every ALU rule has a register/register form and a register/immediate
// form guarded by an immediate-range check, exactly the dominant use of
// dynamic costs in lcc's RISC machine descriptions.
const mipsSrc = `
%name mips
%start stmt
` + Terms + `

// ---- constants -----------------------------------------------------------
con:  CNST                          (0)  "=%c"
con:  ADDRG                         (0)  "=%s"
reg:  CNST                          (dyn mips.imm16c) "addiu %d, $0, %c"
reg:  CNST                          (2)  "lui %d, hi(%c) ; ori %d, lo(%c)"
reg:  REG                           (0)  "=v%c"
reg:  ARGREG                        (0)  "=a%c"
reg:  ADDRG                         (2)  "lui %d, hi(%s) ; addiu %d, lo(%s)"
reg:  ADDRL                         (1)  "addiu %d, $fp, %c"

// ---- addressing: base + 16-bit displacement ------------------------------
addr: reg                           (0)  "=0(%0)"
addr: ADDRL                         (0)  "=%c($fp)"
addr: ADD(reg, CNST)                (dyn mips.imm16a) "=%1(%0)"
addr: ADD(CNST, reg)                (dyn mips.imm16la) "=%0(%1)"
addr: SUB(reg, CNST)                (dyn mips.imm16a) "=-%1(%0)"

// ---- loads and stores ------------------------------------------------------
reg:  INDIR(addr)                   (2)  "lw %d, %0 ; lw %d+1, %0+4"
reg:  INDIR1(addr)                  (1)  "lb %d, %0"
reg:  INDIR2(addr)                  (1)  "lh %d, %0"
reg:  INDIR4(addr)                  (1)  "lw %d, %0"
stmt: ASGN(addr, reg)               (2)  "sw %1, %0 ; sw %1+1, %0+4"
stmt: ASGN1(addr, reg)              (1)  "sb %1, %0"
stmt: ASGN2(addr, reg)              (1)  "sh %1, %0"
stmt: ASGN4(addr, reg)              (1)  "sw %1, %0"
stmt: ASGN(addr, CNST)              (dyn mips.zero) "sw $0, %0 ; sw $0, %0+4"
stmt: ASGN1(addr, CNST)             (dyn mips.zero) "sb $0, %0"
stmt: ASGN2(addr, CNST)             (dyn mips.zero) "sh $0, %0"
stmt: ASGN4(addr, CNST)             (dyn mips.zero) "sw $0, %0"

// ---- ALU: register/register and register/immediate pairs -------------------
reg:  ADD(reg, reg)                 (1)  "addu %d, %0, %1"
reg:  ADD(reg, CNST)                (dyn mips.imm16) "addiu %d, %0, %1"
reg:  ADD(CNST, reg)                (dyn mips.imm16l) "addiu %d, %1, %0"
reg:  SUB(reg, reg)                 (1)  "subu %d, %0, %1"
reg:  SUB(reg, CNST)                (dyn mips.imm16) "addiu %d, %0, -%1"
reg:  AND(reg, reg)                 (1)  "and %d, %0, %1"
reg:  AND(reg, CNST)                (dyn mips.uimm16) "andi %d, %0, %1"
reg:  OR(reg, reg)                  (1)  "or %d, %0, %1"
reg:  OR(reg, CNST)                 (dyn mips.uimm16) "ori %d, %0, %1"
reg:  XOR(reg, reg)                 (1)  "xor %d, %0, %1"
reg:  XOR(reg, CNST)                (dyn mips.uimm16) "xori %d, %0, %1"
reg:  SHL(reg, CNST)                (dyn mips.sh5) "sll %d, %0, %1"
reg:  SHL(reg, reg)                 (1)  "sllv %d, %0, %1"
reg:  SHR(reg, CNST)                (dyn mips.sh5) "srl %d, %0, %1"
reg:  SHR(reg, reg)                 (1)  "srlv %d, %0, %1"
reg:  NEG(reg)                      (1)  "subu %d, $0, %0"
reg:  NOT(reg)                      (1)  "nor %d, %0, $0"
reg:  CVT(reg)                      (1)  "sll %d, %0, 0"

// ---- multiply / divide -------------------------------------------------------
reg:  MUL(reg, reg)                 (4)  "mult %0, %1 ; mflo %d"
reg:  MUL(reg, CNST)                (dyn mips.pow2) "sll %d, %0, log2(%1)"
reg:  DIV(reg, reg)                 (35) "div %0, %1 ; mflo %d"
reg:  DIV(reg, CNST)                (dyn mips.pow2) "sra %d, %0, log2(%1)"
reg:  MOD(reg, reg)                 (35) "div %0, %1 ; mfhi %d"

// ---- comparisons and branches ------------------------------------------------
stmt: EQ(reg, reg)                  (1)  "beq %0, %1, L%c"
stmt: EQ(reg, CNST)                 (dyn mips.zero1) "beqz %0, L%c"
stmt: NE(reg, reg)                  (1)  "bne %0, %1, L%c"
stmt: NE(reg, CNST)                 (dyn mips.zero1) "bnez %0, L%c"
stmt: LT(reg, reg)                  (2)  "slt $at, %0, %1 ; bnez $at, L%c"
stmt: LT(reg, CNST)                 (dyn mips.imm16b) "slti $at, %0, %1 ; bnez $at, L%c"
stmt: LE(reg, reg)                  (2)  "slt $at, %1, %0 ; beqz $at, L%c"
stmt: GT(reg, reg)                  (2)  "slt $at, %1, %0 ; bnez $at, L%c"
stmt: GE(reg, reg)                  (2)  "slt $at, %0, %1 ; beqz $at, L%c"
stmt: GE(reg, CNST)                 (dyn mips.imm16b) "slti $at, %0, %1 ; beqz $at, L%c"

// ---- control flow ---------------------------------------------------------------
stmt: LABEL                         (0)  "L%c:"
stmt: JUMP(CNST)                    (1)  "j L%0"
stmt: JUMP(reg)                     (1)  "jr %0"
stmt: RET(reg)                      (1)  "move $v0, %0 ; jr $ra"
reg:  CALL(reg)                     (2)  "jalr %0 ; move %d, $v0"
reg:  CALL(ADDRG)                   (2)  "jal %0 ; move %d, $v0"
stmt: ARG(reg)                      (1)  "move $a?, %0"
stmt: SEQ(stmt, stmt)               (0)
stmt: NOP                           (0)  "nop"
stmt: reg                           (0)
`

// mipsEnv binds the MIPS immediate-range checks.
func mipsEnv() grammar.DynEnv {
	imm16 := func(v int64) bool { return v >= -32768 && v <= 32767 }
	uimm16 := func(v int64) bool { return v >= 0 && v <= 65535 }
	env := grammar.DynEnv{}
	// leaf rule: the node itself is the constant
	env["mips.imm16c"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Value()) {
			return 1
		}
		return grammar.Inf
	}
	// addressing-mode displacements cost nothing
	env["mips.imm16a"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(1).Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["mips.imm16la"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(0).Value()) {
			return 0
		}
		return grammar.Inf
	}
	// kid-1 immediate checks
	env["mips.imm16"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(1).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["mips.imm16b"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(1).Value()) {
			return 2
		}
		return grammar.Inf
	}
	// kid-0 immediate (commuted forms)
	env["mips.imm16l"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(0).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["mips.uimm16"] = func(n grammar.DynNode) grammar.Cost {
		if uimm16(n.Kid(1).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["mips.sh5"] = func(n grammar.DynNode) grammar.Cost {
		v := n.Kid(1).Value()
		if v >= 0 && v < 32 {
			return 1
		}
		return grammar.Inf
	}
	env["mips.pow2"] = func(n grammar.DynNode) grammar.Cost {
		v := n.Kid(1).Value()
		if v > 0 && v&(v-1) == 0 {
			return 1
		}
		return grammar.Inf
	}
	// store zero / branch against zero use the hardwired $0 register
	env["mips.zero"] = func(n grammar.DynNode) grammar.Cost {
		if n.Kid(1).Value() == 0 {
			return 1
		}
		return grammar.Inf
	}
	env["mips.zero1"] = func(n grammar.DynNode) grammar.Cost {
		if n.Kid(1).Value() == 0 {
			return 1
		}
		return grammar.Inf
	}
	return env
}

func init() {
	register("mips", func() Desc {
		return Desc{Grammar: grammar.MustParse(mipsSrc), Env: mipsEnv()}
	})
}
