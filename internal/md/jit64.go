package md

import "repro/internal/grammar"

// jit64Src is the small JIT-compiler grammar: the kind of compact AMD64
// description a method JIT's second tier uses — simpler than a full lcc
// description (fewer addressing modes, no commuted immediate forms), with
// a couple of dynamic rules for immediates and a read-modify-write pattern.
// Its smaller rules-per-operator fan-out makes dynamic programming
// comparatively cheaper, which is why the JIT-side speedups of the paper
// family are smaller than the lcc-side ones — an effect the experiments
// reproduce.
const jit64Src = `
%name jit64
%start stmt
` + Terms + `

con:  CNST                          (0)  "=$%c"
con:  ADDRG                         (0)  "=%s"
reg:  CNST                          (1)  "mov $%c, %d"
reg:  REG                           (0)  "=v%c"
reg:  ARGREG                        (0)  "=a%c"
reg:  ADDRL                         (1)  "lea %c(fp), %d"
reg:  ADDRG                         (1)  "lea %s, %d"

addr: reg                           (0)  "=(%0)"
addr: ADDRL                         (0)  "=%c(fp)"
addr: ADD(reg, CNST)                (dyn jit.disp32) "=%1(%0)"

reg:  INDIR(addr)                   (1)  "mov %0, %d"
reg:  INDIR1(addr)                  (1)  "movsx.b %0, %d"
reg:  INDIR2(addr)                  (1)  "movsx.w %0, %d"
reg:  INDIR4(addr)                  (1)  "movsx.l %0, %d"
stmt: ASGN(addr, reg)               (1)  "mov %1, %0"
stmt: ASGN1(addr, reg)              (1)  "mov.b %1, %0"
stmt: ASGN2(addr, reg)              (1)  "mov.w %1, %0"
stmt: ASGN4(addr, reg)              (1)  "mov.l %1, %0"

reg:  ADD(reg, reg)                 (1)  "add %1, %0 -> %d"
reg:  ADD(reg, CNST)                (dyn jit.imm32) "add $%1, %0 -> %d"
reg:  SUB(reg, reg)                 (1)  "sub %1, %0 -> %d"
reg:  SUB(reg, CNST)                (dyn jit.imm32) "sub $%1, %0 -> %d"
reg:  AND(reg, reg)                 (1)  "and %1, %0 -> %d"
reg:  OR(reg, reg)                  (1)  "or %1, %0 -> %d"
reg:  XOR(reg, reg)                 (1)  "xor %1, %0 -> %d"
reg:  SHL(reg, CNST)                (dyn jit.sh6) "shl $%1, %0 -> %d"
reg:  SHL(reg, reg)                 (2)  "shl %%cl, %0 -> %d"
reg:  SHR(reg, CNST)                (dyn jit.sh6) "shr $%1, %0 -> %d"
reg:  SHR(reg, reg)                 (2)  "shr %%cl, %0 -> %d"
reg:  NEG(reg)                      (1)  "neg %0 -> %d"
reg:  NOT(reg)                      (1)  "not %0 -> %d"
reg:  CVT(reg)                      (1)  "movsx %0 -> %d"
reg:  MUL(reg, reg)                 (3)  "imul %1, %0 -> %d"
reg:  DIV(reg, reg)                 (24) "idiv %1 -> %d"
reg:  MOD(reg, reg)                 (24) "idiv %1 -> rdx -> %d"

stmt: ASGN(addr, ADD(INDIR(addr), reg)) (dyn jit.memop) "add %1.1, %0"
stmt: ASGN(addr, SUB(INDIR(addr), reg)) (dyn jit.memop) "sub %1.1, %0"
stmt: ASGN4(addr, ADD(INDIR4(addr), reg)) (dyn jit.memop) "add.l %1.1, %0"
stmt: ASGN4(addr, SUB(INDIR4(addr), reg)) (dyn jit.memop) "sub.l %1.1, %0"

stmt: EQ(reg, reg)                  (2)  "cmp %1, %0 ; je L%c"
stmt: NE(reg, reg)                  (2)  "cmp %1, %0 ; jne L%c"
stmt: LT(reg, reg)                  (2)  "cmp %1, %0 ; jl L%c"
stmt: LE(reg, reg)                  (2)  "cmp %1, %0 ; jle L%c"
stmt: GT(reg, reg)                  (2)  "cmp %1, %0 ; jg L%c"
stmt: GE(reg, reg)                  (2)  "cmp %1, %0 ; jge L%c"

stmt: LABEL                         (0)  "L%c:"
stmt: JUMP(CNST)                    (1)  "jmp L%0"
stmt: RET(reg)                      (1)  "mov %0, rax ; ret"
reg:  CALL(ADDRG)                   (2)  "call %0 -> %d"
reg:  CALL(reg)                     (2)  "call *%0 -> %d"
stmt: ARG(reg)                      (1)  "push %0"
stmt: SEQ(stmt, stmt)               (0)
stmt: NOP                           (0)
stmt: reg                           (0)
`

// jit64Env binds the JIT grammar's dynamic checks.
func jit64Env() grammar.DynEnv {
	return grammar.DynEnv{
		"jit.disp32": func(n grammar.DynNode) grammar.Cost {
			v := n.Kid(1).Value()
			if v >= -1<<31 && v < 1<<31 {
				return 0
			}
			return grammar.Inf
		},
		"jit.imm32": func(n grammar.DynNode) grammar.Cost {
			v := n.Kid(1).Value()
			if v >= -1<<31 && v < 1<<31 {
				return 1
			}
			return grammar.Inf
		},
		"jit.sh6": func(n grammar.DynNode) grammar.Cost {
			v := n.Kid(1).Value()
			if v >= 0 && v < 64 {
				return 1
			}
			return grammar.Inf
		},
		"jit.memop": func(n grammar.DynNode) grammar.Cost {
			if n.Kid(0).Same(n.Kid(1).Kid(0).Kid(0)) {
				return 1
			}
			return grammar.Inf
		},
	}
}

func init() {
	register("jit64", func() Desc {
		return Desc{Grammar: grammar.MustParse(jit64Src), Env: jit64Env()}
	})
}
