package md

import "repro/internal/grammar"

// alphaSrc is the Alpha-flavored description: a pure 64-bit load/store
// architecture with 8-bit zero-extended literals in the second operand of
// ALU instructions, scaled add instructions (s4addq/s8addq), and
// compare-into-register followed by branch-on-register. Like lcc's Alpha
// description, all dynamic costs are pure applicability tests.
const alphaSrc = `
%name alpha
%start stmt
` + Terms + `

// ---- constants -----------------------------------------------------------
con:  CNST                          (0)  "=%c"
con:  ADDRG                         (0)  "=%s"
reg:  CNST                          (dyn alpha.lit8c) "bis $31, %c, %d"
reg:  CNST                          (dyn alpha.imm16c) "lda %d, %c($31)"
reg:  CNST                          (2)  "ldah+lda %c -> %d"
reg:  REG                           (0)  "=v%c"
reg:  ARGREG                        (0)  "=a%c"
reg:  ADDRG                         (1)  "lda %d, %s"
reg:  ADDRL                         (1)  "lda %d, %c($fp)"

// ---- addressing: base + 16-bit displacement --------------------------------
addr: reg                           (0)  "=0(%0)"
addr: ADDRL                         (0)  "=%c($fp)"
addr: ADD(reg, CNST)                (dyn alpha.imm16a) "=%1(%0)"
addr: ADD(CNST, reg)                (dyn alpha.imm16la) "=%0(%1)"

// ---- loads and stores --------------------------------------------------------
reg:  INDIR(addr)                   (1)  "ldq %d, %0"
reg:  INDIR1(addr)                  (3)  "ldq_u $at, %0 ; extbl $at, %0, %d ; sextb %d"
reg:  INDIR2(addr)                  (3)  "ldq_u $at, %0 ; extwl $at, %0, %d ; sextw %d"
reg:  INDIR4(addr)                  (1)  "ldl %d, %0"
stmt: ASGN(addr, reg)               (1)  "stq %1, %0"
stmt: ASGN1(addr, reg)              (4)  "ldq_u $at, %0 ; insbl %1, %0, $t ; mskbl $at ; stq_u %0"
stmt: ASGN2(addr, reg)              (4)  "ldq_u $at, %0 ; inswl %1, %0, $t ; mskwl $at ; stq_u %0"
stmt: ASGN4(addr, reg)              (1)  "stl %1, %0"
stmt: ASGN(addr, CNST)              (dyn alpha.zero) "stq $31, %0"
stmt: ASGN4(addr, CNST)             (dyn alpha.zero) "stl $31, %0"

// ---- ALU: reg/reg and reg/lit8 pairs -------------------------------------------
reg:  ADD(reg, reg)                 (1)  "addq %0, %1, %d"
reg:  ADD(reg, CNST)                (dyn alpha.lit8) "addq %0, %1, %d"
reg:  ADD(CNST, reg)                (dyn alpha.lit8l) "addq %1, %0, %d"
reg:  SUB(reg, reg)                 (1)  "subq %0, %1, %d"
reg:  SUB(reg, CNST)                (dyn alpha.lit8) "subq %0, %1, %d"
reg:  AND(reg, reg)                 (1)  "and %0, %1, %d"
reg:  AND(reg, CNST)                (dyn alpha.lit8) "and %0, %1, %d"
reg:  OR(reg, reg)                  (1)  "bis %0, %1, %d"
reg:  OR(reg, CNST)                 (dyn alpha.lit8) "bis %0, %1, %d"
reg:  XOR(reg, reg)                 (1)  "xor %0, %1, %d"
reg:  XOR(reg, CNST)                (dyn alpha.lit8) "xor %0, %1, %d"
reg:  SHL(reg, reg)                 (1)  "sll %0, %1, %d"
reg:  SHL(reg, CNST)                (dyn alpha.lit8) "sll %0, %1, %d"
reg:  SHR(reg, reg)                 (1)  "srl %0, %1, %d"
reg:  SHR(reg, CNST)                (dyn alpha.lit8) "srl %0, %1, %d"
reg:  NEG(reg)                      (1)  "subq $31, %0, %d"
reg:  NOT(reg)                      (1)  "ornot $31, %0, %d"
reg:  CVT(reg)                      (1)  "addl %0, 0, %d"

// ---- scaled adds (s4addq/s8addq) -------------------------------------------------
reg:  ADD(MUL(reg, CNST), reg)      (dyn alpha.scale48) "s%0.1addq %0.0, %1, %d"
reg:  ADD(SHL(reg, CNST), reg)      (dyn alpha.scale23) "s?addq %0.0, %1, %d"

// ---- multiply / divide --------------------------------------------------------------
reg:  MUL(reg, reg)                 (8)  "mulq %0, %1, %d"
reg:  MUL(reg, CNST)                (dyn alpha.pow2) "sll %0, log2(%1), %d"
reg:  DIV(reg, reg)                 (60) "__divq %0, %1 -> %d"
reg:  MOD(reg, reg)                 (60) "__remq %0, %1 -> %d"

// ---- comparisons: cmp into register, then branch on register ------------------------
stmt: EQ(reg, reg)                  (2)  "cmpeq %0, %1, $at ; bne $at, L%c"
stmt: EQ(reg, CNST)                 (dyn alpha.zerob) "beq %0, L%c"
stmt: NE(reg, reg)                  (2)  "cmpeq %0, %1, $at ; beq $at, L%c"
stmt: NE(reg, CNST)                 (dyn alpha.zerob) "bne %0, L%c"
stmt: LT(reg, reg)                  (2)  "cmplt %0, %1, $at ; bne $at, L%c"
stmt: LT(reg, CNST)                 (dyn alpha.lit8b) "cmplt %0, %1, $at ; bne $at, L%c"
stmt: LE(reg, reg)                  (2)  "cmple %0, %1, $at ; bne $at, L%c"
stmt: LE(reg, CNST)                 (dyn alpha.lit8b) "cmple %0, %1, $at ; bne $at, L%c"
stmt: GT(reg, reg)                  (2)  "cmple %1, %0, $at ; beq $at, L%c"
stmt: GE(reg, reg)                  (2)  "cmplt %1, %0, $at ; beq $at, L%c"

// ---- control flow ---------------------------------------------------------------------
stmt: LABEL                         (0)  "L%c:"
stmt: JUMP(CNST)                    (1)  "br L%0"
stmt: JUMP(reg)                     (1)  "jmp ($%0)"
stmt: RET(reg)                      (1)  "bis %0, %0, $0 ; ret"
reg:  CALL(reg)                     (2)  "jsr ($%0) ; bis $0, $0, %d"
reg:  CALL(ADDRG)                   (2)  "jsr %0 ; bis $0, $0, %d"
stmt: ARG(reg)                      (1)  "bis %0, %0, $16"
stmt: SEQ(stmt, stmt)               (0)
stmt: NOP                           (0)
stmt: reg                           (0)
`

// alphaEnv binds the Alpha literal and scale checks.
func alphaEnv() grammar.DynEnv {
	lit8 := func(v int64) bool { return v >= 0 && v <= 255 }
	imm16 := func(v int64) bool { return v >= -32768 && v <= 32767 }
	env := grammar.DynEnv{}
	env["alpha.lit8c"] = func(n grammar.DynNode) grammar.Cost {
		if lit8(n.Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.imm16c"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.imm16a"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(1).Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["alpha.imm16la"] = func(n grammar.DynNode) grammar.Cost {
		if imm16(n.Kid(0).Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["alpha.lit8"] = func(n grammar.DynNode) grammar.Cost {
		if lit8(n.Kid(1).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.lit8l"] = func(n grammar.DynNode) grammar.Cost {
		if lit8(n.Kid(0).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.lit8b"] = func(n grammar.DynNode) grammar.Cost {
		if lit8(n.Kid(1).Value()) {
			return 2
		}
		return grammar.Inf
	}
	// s4addq/s8addq: ADD(MUL(reg, 4|8), reg)
	env["alpha.scale48"] = func(n grammar.DynNode) grammar.Cost {
		switch n.Kid(0).Kid(1).Value() {
		case 4, 8:
			return 1
		}
		return grammar.Inf
	}
	// via shift: ADD(SHL(reg, 2|3), reg)
	env["alpha.scale23"] = func(n grammar.DynNode) grammar.Cost {
		switch n.Kid(0).Kid(1).Value() {
		case 2, 3:
			return 1
		}
		return grammar.Inf
	}
	env["alpha.pow2"] = func(n grammar.DynNode) grammar.Cost {
		v := n.Kid(1).Value()
		if v > 0 && v&(v-1) == 0 {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.zero"] = func(n grammar.DynNode) grammar.Cost {
		if n.Kid(1).Value() == 0 {
			return 1
		}
		return grammar.Inf
	}
	env["alpha.zerob"] = func(n grammar.DynNode) grammar.Cost {
		if n.Kid(1).Value() == 0 {
			return 1
		}
		return grammar.Inf
	}
	return env
}

func init() {
	register("alpha", func() Desc {
		return Desc{Grammar: grammar.MustParse(alphaSrc), Env: alphaEnv()}
	})
}
