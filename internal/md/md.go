// Package md holds the machine descriptions (tree grammars) of the
// reproduction, rebuilt in the spirit of lcc's lburg descriptions: a large
// CISC grammar with addressing modes and read-modify-write dynamic rules
// (x86), three RISC grammars with immediate-range dynamic rules (mips,
// sparc, alpha), a small JIT-compiler grammar (jit64), and the running
// example of the tree-parsing literature (demo).
//
// All grammars share one operator vocabulary (the generic IR the MinC
// front end lowers to), so the same workload forests can be labeled with
// every grammar.
package md

import (
	"fmt"
	"sort"

	"repro/internal/grammar"
)

// Desc bundles a grammar with the dynamic-cost environment its rules need.
type Desc struct {
	Grammar *grammar.Grammar
	Env     grammar.DynEnv
}

// registry of all machine descriptions, populated by init functions.
var registry = map[string]func() Desc{}

func register(name string, f func() Desc) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("md: duplicate machine description %q", name))
	}
	registry[name] = f
}

// Load returns the named machine description, parsing its grammar.
func Load(name string) (Desc, error) {
	f, ok := registry[name]
	if !ok {
		return Desc{}, fmt.Errorf("md: unknown machine description %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustLoad is Load for statically known names.
func MustLoad(name string) Desc {
	d, err := Load(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names lists the registered machine descriptions in sorted order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Terms is the shared operator vocabulary: the generic IR operators the
// MinC front end produces and every grammar's %term section declares.
// The names follow lcc's flavor (CNST, ADDR, INDIR/ASGN for load/store).
// Memory accesses carry an access width, lcc-style (INDIRI1/INDIRI4...):
// INDIR/ASGN move 8 bytes; INDIR1/2/4 are sign-extending narrow loads and
// ASGN1/2/4 narrow stores. The width variants are where real machine
// descriptions get much of their rule count — every addressing-mode and
// read-modify-write rule repeats per width.
const Terms = `
%term CNST(0) ADDRL(0) ADDRG(0) REG(0) ARGREG(0)
%term INDIR(1) INDIR1(1) INDIR2(1) INDIR4(1)
%term NEG(1) NOT(1) CVT(1) RET(1) JUMP(1) LABEL(0)
%term ASGN(2) ASGN1(2) ASGN2(2) ASGN4(2)
%term ADD(2) SUB(2) MUL(2) DIV(2) MOD(2)
%term AND(2) OR(2) XOR(2) SHL(2) SHR(2)
%term EQ(2) NE(2) LT(2) LE(2) GT(2) GE(2)
%term CALL(1) ARG(1) SEQ(2) NOP(0)
`
