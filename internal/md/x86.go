package md

import "repro/internal/grammar"

// x86Src is the CISC machine description, modeled on lcc's x86linux.md: a
// rich addressing-mode sublanguage (base, scaled index, displacement),
// memory operands on ALU instructions, and the dynamic-cost rules that
// motivated lburg — read-modify-write instructions (the pattern is a DAG,
// so a tree rule over-matches and a selection-time address-identity check
// guards it), increment/decrement, power-of-two multiplies, scaled-index
// validity, and test-against-zero.
//
// AT&T operand order (destination last). %d is the destination virtual
// register, dotted paths (%1.1) reach into multi-node patterns.
const x86Src = `
%name x86
%start stmt
` + Terms + `

// ---- constants and address leaves -------------------------------------
con:  CNST                          (0)  "=$%c"
con:  ADDRG                         (0)  "=$%s"
reg:  CNST                          (1)  "movq $%c, %d"
reg:  ADDRG                         (1)  "leaq %s(%%rip), %d"
reg:  ADDRL                         (1)  "leaq %c(%%rbp), %d"
reg:  REG                           (0)  "=v%c"
reg:  ARGREG                        (0)  "=a%c"

// ---- addressing modes ---------------------------------------------------
base: reg                           (0)  "=(%0)"
base: ADDRL                         (0)  "=%c(%%rbp)"
base: ADDRG                         (0)  "=%s(%%rip)"
base: ADD(reg, con)                 (0)  "=%1(%0)"
base: ADD(con, reg)                 (0)  "=%0(%1)"
base: SUB(reg, con)                 (0)  "=-%1(%0)"
addr: base                          (0)
addr: ADD(reg, reg)                 (0)  "=(%0,%1)"
addr: ADD(reg, SHL(reg, CNST))      (dyn x86.scale) "=(%0,%1.0,%1.1)"
addr: ADD(reg, MUL(reg, CNST))      (dyn x86.scalemul) "=(%0,%1.0,%1.1)"

// ---- memory operands ----------------------------------------------------
mem:  INDIR(addr)                   (0)  "=%0"
reg:  INDIR(addr)                   (1)  "movq %0, %d"
reg:  INDIR1(addr)                  (1)  "movsbq %0, %d"
reg:  INDIR2(addr)                  (1)  "movswq %0, %d"
reg:  INDIR4(addr)                  (1)  "movslq %0, %d"
rc:   reg                           (0)
rc:   con                           (0)
mrc:  mem                           (0)
mrc:  rc                            (0)

// ---- two-operand ALU ----------------------------------------------------
reg:  ADD(reg, mrc)                 (1)  "addq %1, %0 ; movq %0, %d"
reg:  ADD(mrc, reg)                 (1)  "addq %0, %1 ; movq %1, %d"
reg:  ADD(reg, CNST)                (dyn x86.one)  "incq %0 ; movq %0, %d"
reg:  SUB(reg, mrc)                 (1)  "subq %1, %0 ; movq %0, %d"
reg:  SUB(reg, CNST)                (dyn x86.one)  "decq %0 ; movq %0, %d"
reg:  AND(reg, mrc)                 (1)  "andq %1, %0 ; movq %0, %d"
reg:  AND(mrc, reg)                 (1)  "andq %0, %1 ; movq %1, %d"
reg:  OR(reg, mrc)                  (1)  "orq %1, %0 ; movq %0, %d"
reg:  OR(mrc, reg)                  (1)  "orq %0, %1 ; movq %1, %d"
reg:  XOR(reg, mrc)                 (1)  "xorq %1, %0 ; movq %0, %d"
reg:  XOR(mrc, reg)                 (1)  "xorq %0, %1 ; movq %1, %d"
reg:  NEG(reg)                      (1)  "negq %0 ; movq %0, %d"
reg:  NOT(reg)                      (1)  "notq %0 ; movq %0, %d"
reg:  CVT(reg)                      (1)  "movslq %0, %d"
reg:  CVT(mem)                      (1)  "movslq %0, %d"

// lea as cheap three-operand add
reg:  ADD(reg, reg)                 (1)  "leaq (%0,%1), %d"

// ---- multiply / divide ---------------------------------------------------
reg:  MUL(reg, mrc)                 (3)  "imulq %1, %0 ; movq %0, %d"
reg:  MUL(mrc, reg)                 (3)  "imulq %0, %1 ; movq %1, %d"
reg:  MUL(reg, CNST)                (dyn x86.pow2)  "shlq $log2(%1), %0 ; movq %0, %d"
reg:  DIV(reg, reg)                 (24) "cqto ; idivq %1 ; movq %%rax, %d"
reg:  DIV(reg, mem)                 (24) "cqto ; idivq %1 ; movq %%rax, %d"
reg:  DIV(reg, CNST)                (dyn x86.pow2)  "sarq $log2(%1), %0 ; movq %0, %d"
reg:  MOD(reg, reg)                 (24) "cqto ; idivq %1 ; movq %%rdx, %d"
reg:  MOD(reg, mem)                 (24) "cqto ; idivq %1 ; movq %%rdx, %d"

// ---- shifts ---------------------------------------------------------------
reg:  SHL(reg, con)                 (1)  "shlq %1, %0 ; movq %0, %d"
reg:  SHL(reg, reg)                 (2)  "movq %1, %%rcx ; shlq %%cl, %0 ; movq %0, %d"
reg:  SHR(reg, con)                 (1)  "shrq %1, %0 ; movq %0, %d"
reg:  SHR(reg, reg)                 (2)  "movq %1, %%rcx ; shrq %%cl, %0 ; movq %0, %d"

// ---- stores ----------------------------------------------------------------
stmt: ASGN(addr, rc)                (1)  "movq %1, %0"
stmt: ASGN(addr, mem)               (2)  "movq %1, %%r11 ; movq %%r11, %0"
stmt: ASGN1(addr, rc)               (1)  "movb %1, %0"
stmt: ASGN2(addr, rc)               (1)  "movw %1, %0"
stmt: ASGN4(addr, rc)               (1)  "movl %1, %0"

// ---- read-modify-write instructions (the dynamic-cost flagship) -----------
// inc/dec variants first: on equal cost, earlier rules win ties, and the
// one-byte inc/dec encodings are the preferred form.
stmt: ASGN(addr, ADD(INDIR(addr), CNST)) (dyn x86.memop1) "incq %0"
stmt: ASGN(addr, SUB(INDIR(addr), CNST)) (dyn x86.memop1) "decq %0"
stmt: ASGN4(addr, ADD(INDIR4(addr), CNST)) (dyn x86.memop1) "incl %0"
stmt: ASGN4(addr, SUB(INDIR4(addr), CNST)) (dyn x86.memop1) "decl %0"
stmt: ASGN1(addr, ADD(INDIR1(addr), CNST)) (dyn x86.memop1) "incb %0"
stmt: ASGN1(addr, SUB(INDIR1(addr), CNST)) (dyn x86.memop1) "decb %0"
stmt: ASGN(addr, ADD(INDIR(addr), rc))  (dyn x86.memop) "addq %1.1, %0"
stmt: ASGN(addr, SUB(INDIR(addr), rc))  (dyn x86.memop) "subq %1.1, %0"
stmt: ASGN(addr, AND(INDIR(addr), rc))  (dyn x86.memop) "andq %1.1, %0"
stmt: ASGN(addr, OR(INDIR(addr), rc))   (dyn x86.memop) "orq %1.1, %0"
stmt: ASGN(addr, XOR(INDIR(addr), rc))  (dyn x86.memop) "xorq %1.1, %0"
stmt: ASGN(addr, SHL(INDIR(addr), con)) (dyn x86.memop) "shlq %1.1, %0"
stmt: ASGN(addr, SHR(INDIR(addr), con)) (dyn x86.memop) "shrq %1.1, %0"
stmt: ASGN(addr, NEG(INDIR(addr)))      (dyn x86.memopu) "negq %0"
stmt: ASGN(addr, NOT(INDIR(addr)))      (dyn x86.memopu) "notq %0"
stmt: ASGN1(addr, ADD(INDIR1(addr), rc)) (dyn x86.memop) "addb %1.1, %0"
stmt: ASGN1(addr, SUB(INDIR1(addr), rc)) (dyn x86.memop) "subb %1.1, %0"
stmt: ASGN1(addr, AND(INDIR1(addr), rc)) (dyn x86.memop) "andb %1.1, %0"
stmt: ASGN1(addr, OR(INDIR1(addr), rc))  (dyn x86.memop) "orb %1.1, %0"
stmt: ASGN2(addr, ADD(INDIR2(addr), rc)) (dyn x86.memop) "addw %1.1, %0"
stmt: ASGN2(addr, SUB(INDIR2(addr), rc)) (dyn x86.memop) "subw %1.1, %0"
stmt: ASGN4(addr, ADD(INDIR4(addr), rc)) (dyn x86.memop) "addl %1.1, %0"
stmt: ASGN4(addr, SUB(INDIR4(addr), rc)) (dyn x86.memop) "subl %1.1, %0"
stmt: ASGN4(addr, AND(INDIR4(addr), rc)) (dyn x86.memop) "andl %1.1, %0"
stmt: ASGN4(addr, OR(INDIR4(addr), rc))  (dyn x86.memop) "orl %1.1, %0"
stmt: ASGN4(addr, XOR(INDIR4(addr), rc)) (dyn x86.memop) "xorl %1.1, %0"
stmt: ASGN4(addr, SHL(INDIR4(addr), con)) (dyn x86.memop) "shll %1.1, %0"
stmt: ASGN4(addr, SHR(INDIR4(addr), con)) (dyn x86.memop) "shrl %1.1, %0"

// ---- comparisons and branches (branch target in the node payload) ---------
stmt: EQ(reg, mrc)                  (2)  "cmpq %1, %0 ; je L%c"
stmt: EQ(mem, rc)                   (2)  "cmpq %1, %0 ; je L%c"
stmt: NE(reg, mrc)                  (2)  "cmpq %1, %0 ; jne L%c"
stmt: NE(mem, rc)                   (2)  "cmpq %1, %0 ; jne L%c"
stmt: LT(reg, mrc)                  (2)  "cmpq %1, %0 ; jl L%c"
stmt: LT(mem, rc)                   (2)  "cmpq %1, %0 ; jl L%c"
stmt: LE(reg, mrc)                  (2)  "cmpq %1, %0 ; jle L%c"
stmt: LE(mem, rc)                   (2)  "cmpq %1, %0 ; jle L%c"
stmt: GT(reg, mrc)                  (2)  "cmpq %1, %0 ; jg L%c"
stmt: GT(mem, rc)                   (2)  "cmpq %1, %0 ; jg L%c"
stmt: GE(reg, mrc)                  (2)  "cmpq %1, %0 ; jge L%c"
stmt: GE(mem, rc)                   (2)  "cmpq %1, %0 ; jge L%c"
stmt: EQ(AND(reg, reg), CNST)       (dyn x86.zero) "testq %0.1, %0.0 ; je L%c"
stmt: NE(AND(reg, reg), CNST)       (dyn x86.zero) "testq %0.1, %0.0 ; jne L%c"

// ---- control flow ----------------------------------------------------------
stmt: LABEL                         (0)  "L%c:"
stmt: JUMP(CNST)                    (1)  "jmp L%0"
stmt: JUMP(reg)                     (1)  "jmp *%0"
stmt: RET(mrc)                      (1)  "movq %0, %%rax ; ret"
reg:  CALL(ADDRG)                   (2)  "call %0 ; movq %%rax, %d"
reg:  CALL(addr)                    (2)  "call *%0 ; movq %%rax, %d"
stmt: ARG(mrc)                      (1)  "pushq %0"
stmt: SEQ(stmt, stmt)               (0)
stmt: NOP                           (0)
stmt: reg                           (0)
`

// x86Env binds the x86 dynamic-cost functions.
func x86Env() grammar.DynEnv {
	memAddrSame := func(n grammar.DynNode) bool {
		// n = ASGN(addr, OP(INDIR(addr'), ...)): the store address and the
		// loaded address must be the identical node.
		return n.Kid(0).Same(n.Kid(1).Kid(0).Kid(0))
	}
	return grammar.DynEnv{
		// scaled index: SHL count 1..3 scales by 2/4/8
		"x86.scale": func(n grammar.DynNode) grammar.Cost {
			c := n.Kid(1).Kid(1).Value()
			if c >= 1 && c <= 3 {
				return 0
			}
			return grammar.Inf
		},
		// scaled index via multiply: factor 2, 4 or 8
		"x86.scalemul": func(n grammar.DynNode) grammar.Cost {
			switch n.Kid(1).Kid(1).Value() {
			case 2, 4, 8:
				return 0
			}
			return grammar.Inf
		},
		// inc/dec via add/sub of constant 1
		"x86.one": func(n grammar.DynNode) grammar.Cost {
			if n.Kid(1).Value() == 1 {
				return 1
			}
			return grammar.Inf
		},
		// multiply/divide by a power of two becomes a shift
		"x86.pow2": func(n grammar.DynNode) grammar.Cost {
			v := n.Kid(1).Value()
			if v > 0 && v&(v-1) == 0 {
				return 1
			}
			return grammar.Inf
		},
		// read-modify-write: same address read and written
		"x86.memop": func(n grammar.DynNode) grammar.Cost {
			if memAddrSame(n) {
				return 1
			}
			return grammar.Inf
		},
		// read-modify-write with constant 1: inc/dec on memory
		"x86.memop1": func(n grammar.DynNode) grammar.Cost {
			if memAddrSame(n) && n.Kid(1).Kid(1).Value() == 1 {
				return 1
			}
			return grammar.Inf
		},
		// unary read-modify-write (neg/not on memory)
		"x86.memopu": func(n grammar.DynNode) grammar.Cost {
			if memAddrSame(n) {
				return 1
			}
			return grammar.Inf
		},
		// compare against zero becomes test
		"x86.zero": func(n grammar.DynNode) grammar.Cost {
			if n.Kid(1).Value() == 0 {
				return 2
			}
			return grammar.Inf
		},
	}
}

func init() {
	register("x86", func() Desc {
		return Desc{Grammar: grammar.MustParse(x86Src), Env: x86Env()}
	})
}
