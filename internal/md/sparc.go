package md

import "repro/internal/grammar"

// sparcSrc is the SPARC-flavored description: 13-bit signed immediates,
// register+register and register+immediate addressing, a %g0 zero register
// that makes compare-against-zero and store-zero free, and set-synthesis
// for large constants (sethi/or). The spill-address rule mirrors the
// literature's example of a non-applicability dynamic cost converted to an
// applicability pair: a cheap rule guarded by an immediate check plus an
// unguarded expensive fallback.
const sparcSrc = `
%name sparc
%start stmt
` + Terms + `

// ---- constants -----------------------------------------------------------
con:  CNST                          (0)  "=%c"
con:  ADDRG                         (0)  "=%s"
reg:  CNST                          (dyn sparc.imm13c) "or %%g0, %c, %d"
reg:  CNST                          (2)  "sethi %%hi(%c), %d ; or %d, %%lo(%c), %d"
reg:  REG                           (0)  "=v%c"
reg:  ARGREG                        (0)  "=i%c"
reg:  ADDRG                         (2)  "sethi %%hi(%s), %d ; or %d, %%lo(%s), %d"
reg:  ADDRL                         (dyn sparc.imm13c) "add %%fp, %c, %d"
reg:  ADDRL                         (2)  "set %c, %d ; add %%fp, %d, %d"

// ---- addressing ------------------------------------------------------------
addr: reg                           (0)  "=[%0]"
addr: ADD(reg, reg)                 (0)  "=[%0+%1]"
addr: ADD(reg, CNST)                (dyn sparc.imm13a) "=[%0+%1]"
addr: ADD(CNST, reg)                (dyn sparc.imm13la) "=[%1+%0]"
addr: ADDRL                         (dyn sparc.imm13c0) "=[%%fp+%c]"

// ---- loads and stores --------------------------------------------------------
reg:  INDIR(addr)                   (1)  "ldd %0, %d"
reg:  INDIR1(addr)                  (1)  "ldsb %0, %d"
reg:  INDIR2(addr)                  (1)  "ldsh %0, %d"
reg:  INDIR4(addr)                  (1)  "ld %0, %d"
stmt: ASGN(addr, reg)               (1)  "std %1, %0"
stmt: ASGN1(addr, reg)              (1)  "stb %1, %0"
stmt: ASGN2(addr, reg)              (1)  "sth %1, %0"
stmt: ASGN4(addr, reg)              (1)  "st %1, %0"
stmt: ASGN(addr, CNST)              (dyn sparc.zero) "std %%g0, %0"
stmt: ASGN1(addr, CNST)             (dyn sparc.zero) "stb %%g0, %0"
stmt: ASGN2(addr, CNST)             (dyn sparc.zero) "sth %%g0, %0"
stmt: ASGN4(addr, CNST)             (dyn sparc.zero) "st %%g0, %0"

// ---- ALU -----------------------------------------------------------------------
reg:  ADD(reg, reg)                 (1)  "add %0, %1, %d"
reg:  ADD(reg, CNST)                (dyn sparc.imm13) "add %0, %1, %d"
reg:  ADD(CNST, reg)                (dyn sparc.imm13l) "add %1, %0, %d"
reg:  SUB(reg, reg)                 (1)  "sub %0, %1, %d"
reg:  SUB(reg, CNST)                (dyn sparc.imm13) "sub %0, %1, %d"
reg:  AND(reg, reg)                 (1)  "and %0, %1, %d"
reg:  AND(reg, CNST)                (dyn sparc.imm13) "and %0, %1, %d"
reg:  OR(reg, reg)                  (1)  "or %0, %1, %d"
reg:  OR(reg, CNST)                 (dyn sparc.imm13) "or %0, %1, %d"
reg:  XOR(reg, reg)                 (1)  "xor %0, %1, %d"
reg:  XOR(reg, CNST)                (dyn sparc.imm13) "xor %0, %1, %d"
reg:  SHL(reg, CNST)                (dyn sparc.sh5) "sll %0, %1, %d"
reg:  SHL(reg, reg)                 (1)  "sll %0, %1, %d"
reg:  SHR(reg, CNST)                (dyn sparc.sh5) "srl %0, %1, %d"
reg:  SHR(reg, reg)                 (1)  "srl %0, %1, %d"
reg:  NEG(reg)                      (1)  "sub %%g0, %0, %d"
reg:  NOT(reg)                      (1)  "xnor %0, %%g0, %d"
reg:  CVT(reg)                      (1)  "sra %0, 0, %d"

// ---- multiply / divide ----------------------------------------------------------
reg:  MUL(reg, reg)                 (5)  "smul %0, %1, %d"
reg:  MUL(reg, CNST)                (dyn sparc.pow2) "sll %0, log2(%1), %d"
reg:  DIV(reg, reg)                 (38) "sra %0, 31, %%o7 ; wr %%o7, %%y ; sdiv %0, %1, %d"
reg:  MOD(reg, reg)                 (40) "sdiv+smul+sub -> %d"

// ---- comparisons and branches ------------------------------------------------------
stmt: EQ(reg, reg)                  (2)  "cmp %0, %1 ; be L%c"
stmt: EQ(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; be L%c"
stmt: NE(reg, reg)                  (2)  "cmp %0, %1 ; bne L%c"
stmt: NE(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; bne L%c"
stmt: LT(reg, reg)                  (2)  "cmp %0, %1 ; bl L%c"
stmt: LT(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; bl L%c"
stmt: LE(reg, reg)                  (2)  "cmp %0, %1 ; ble L%c"
stmt: LE(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; ble L%c"
stmt: GT(reg, reg)                  (2)  "cmp %0, %1 ; bg L%c"
stmt: GT(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; bg L%c"
stmt: GE(reg, reg)                  (2)  "cmp %0, %1 ; bge L%c"
stmt: GE(reg, CNST)                 (dyn sparc.imm13b) "cmp %0, %1 ; bge L%c"

// ---- control flow --------------------------------------------------------------------
stmt: LABEL                         (0)  "L%c:"
stmt: JUMP(CNST)                    (1)  "ba L%0 ; nop"
stmt: JUMP(reg)                     (1)  "jmp %0 ; nop"
stmt: RET(reg)                      (2)  "mov %0, %%i0 ; ret ; restore"
reg:  CALL(reg)                     (2)  "call %0 ; nop ; mov %%o0, %d"
reg:  CALL(ADDRG)                   (2)  "call %0 ; nop ; mov %%o0, %d"
stmt: ARG(reg)                      (1)  "mov %0, %%o?"
stmt: SEQ(stmt, stmt)               (0)
stmt: NOP                           (0)  "nop"
stmt: reg                           (0)
`

// sparcEnv binds the SPARC immediate-range checks.
func sparcEnv() grammar.DynEnv {
	imm13 := func(v int64) bool { return v >= -4096 && v <= 4095 }
	env := grammar.DynEnv{}
	env["sparc.imm13c"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["sparc.imm13c0"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["sparc.imm13a"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Kid(1).Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["sparc.imm13la"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Kid(0).Value()) {
			return 0
		}
		return grammar.Inf
	}
	env["sparc.imm13"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Kid(1).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["sparc.imm13l"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Kid(0).Value()) {
			return 1
		}
		return grammar.Inf
	}
	env["sparc.imm13b"] = func(n grammar.DynNode) grammar.Cost {
		if imm13(n.Kid(1).Value()) {
			return 2
		}
		return grammar.Inf
	}
	env["sparc.sh5"] = func(n grammar.DynNode) grammar.Cost {
		v := n.Kid(1).Value()
		if v >= 0 && v < 32 {
			return 1
		}
		return grammar.Inf
	}
	env["sparc.pow2"] = func(n grammar.DynNode) grammar.Cost {
		v := n.Kid(1).Value()
		if v > 0 && v&(v-1) == 0 {
			return 1
		}
		return grammar.Inf
	}
	env["sparc.zero"] = func(n grammar.DynNode) grammar.Cost {
		if n.Kid(1).Value() == 0 {
			return 1
		}
		return grammar.Inf
	}
	return env
}

func init() {
	register("sparc", func() Desc {
		return Desc{Grammar: grammar.MustParse(sparcSrc), Env: sparcEnv()}
	})
}
