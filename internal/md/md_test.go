package md

import (
	"testing"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"alpha", "demo", "jit64", "mips", "sparc", "x86"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Error("expected error for unknown description")
	}
}

// TestAllDescriptionsLoad parses every grammar and binds every dynamic-cost
// name, so a missing binding or grammar typo fails here rather than deep in
// an experiment.
func TestAllDescriptionsLoad(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Env.Bind(d.Grammar); err != nil {
				t.Fatal(err)
			}
			st := d.Grammar.ComputeStats()
			if st.NormalizedRules < 8 {
				t.Errorf("suspiciously small grammar: %+v", st)
			}
			t.Logf("%s", st)
		})
	}
}

// TestEnvNamesUsed: every binding in an environment must be referenced by
// the grammar (catches stale bindings), and vice versa (caught by Bind).
func TestEnvNamesUsed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name)
			used := map[string]bool{}
			for i := range d.Grammar.Rules {
				if dc := d.Grammar.Rules[i].DynCost; dc != "" {
					used[dc] = true
				}
			}
			for _, n := range d.Env.Names() {
				if !used[n] {
					t.Errorf("binding %q is not used by the grammar", n)
				}
			}
		})
	}
}

// TestEnginesAgreeOnAllGrammars is the full-scale oracle check: for every
// machine description, DP and on-demand labeling agree rule-for-rule on
// random statement forests (trees and DAGs).
func TestEnginesAgreeOnAllGrammars(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name)
			g := d.Grammar
			l, err := dp.New(g, d.Env, nil)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.New(g, d.Env, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 6; seed++ {
				f := ir.RandomForest(g, ir.RandomConfig{
					Seed: seed, Trees: 120, MaxDepth: 7, Share: seed%2 == 1, MaxLeafVal: 1 << uint(4*seed%40),
				})
				want := l.LabelResult(f)
				got := e.LabelStates(f)
				for _, n := range f.Nodes {
					s := got.StateAt(n)
					row := want.Costs[n.Index]
					min := grammar.Inf
					for _, c := range row {
						if c < min {
							min = c
						}
					}
					for nt := range row {
						if want.Rules[n.Index][nt] != s.Rule[nt] {
							t.Fatalf("seed %d node %d (%s) nt %s: od rule %s != dp rule %s",
								seed, n.Index, g.OpName(n.Op), g.NTName(grammar.NT(nt)),
								g.RuleName(int(s.Rule[nt])), g.RuleName(int(want.Rules[n.Index][nt])))
						}
						wantDelta := grammar.Inf
						if !row[nt].IsInf() {
							wantDelta = row[nt] - min
						}
						if s.Delta[nt] != wantDelta {
							t.Fatalf("seed %d node %d nt %s: delta %d != %d",
								seed, n.Index, g.NTName(grammar.NT(nt)), s.Delta[nt], wantDelta)
						}
					}
				}
			}
		})
	}
}

// TestStripDynamicClosed: every grammar must stay well-formed with its
// dynamic rules removed — the variant offline generation and the
// code-quality experiment need.
func TestStripDynamicClosed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name)
			fixed, err := d.Grammar.StripDynamic()
			if err != nil {
				t.Fatal(err)
			}
			if fixed.HasAnyDynRules() {
				t.Error("stripped grammar still has dynamic rules")
			}
			if fixed.NumRules() >= d.Grammar.NumRules() {
				t.Errorf("strip removed nothing: %d -> %d rules",
					d.Grammar.NumRules(), fixed.NumRules())
			}
		})
	}
}

// TestStaticGenerationAllGrammars: the offline generator must terminate
// with a sane state count on every stripped grammar — and agree with DP.
func TestStaticGenerationAllGrammars(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name)
			fixed, err := d.Grammar.StripDynamic()
			if err != nil {
				t.Fatal(err)
			}
			a, err := automaton.Generate(fixed, automaton.StaticConfig{})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d states, %d transition entries, %d bytes",
				name, a.NumStates(), a.NumTransitions(), a.MemoryBytes())
			if a.NumStates() < 4 {
				t.Errorf("implausibly small automaton: %d states", a.NumStates())
			}
			l, err := dp.New(fixed, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			f := ir.RandomForest(fixed, ir.RandomConfig{Seed: 99, Trees: 150, MaxDepth: 7})
			want := l.LabelResult(f)
			got := a.LabelStates(f)
			for _, n := range f.Nodes {
				for nt := range want.Costs[n.Index] {
					if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
						t.Fatalf("node %d nt %d: static disagrees with DP", n.Index, nt)
					}
				}
			}
		})
	}
}

// TestImmediateRangesMatter: the same expression with a small and a large
// constant must select different rules on the RISC grammars.
func TestImmediateRangesMatter(t *testing.T) {
	for _, name := range []string{"mips", "sparc", "alpha"} {
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name)
			g := d.Grammar
			l, err := dp.New(g, d.Env, nil)
			if err != nil {
				t.Fatal(err)
			}
			reg := g.MustNT("reg")
			small := ir.MustParseTree(g, "ADD(REG[1], CNST[5])")
			large := ir.MustParseTree(g, "ADD(REG[1], CNST[100000])")
			rs := l.LabelResult(small)
			rl := l.LabelResult(large)
			cSmall := rs.CostAt(small.Roots[0], reg)
			cLarge := rl.CostAt(large.Roots[0], reg)
			if cSmall >= cLarge {
				t.Errorf("small-immediate add (%d) must be cheaper than large (%d)", cSmall, cLarge)
			}
		})
	}
}

// TestX86RMWSelected: the flagship x86 dynamic rule fires on a DAG with a
// shared address and costs less than load+op+store.
func TestX86RMWSelected(t *testing.T) {
	d := MustLoad("x86")
	g := d.Grammar
	l, err := dp.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(g)
	a := b.Leaf("ADDRL", -8)
	v := b.Leaf("REG", 2)
	rmw := b.Node("ASGN", a, b.Node("ADD", b.Node("INDIR", a), v))
	b.Root(rmw)
	f := b.Finish()
	res := l.LabelResult(f)
	if got := res.CostAt(rmw, g.Start); got != 1 {
		t.Errorf("RMW cost = %d, want 1\n%s", got, res.Explain(rmw))
	}
}

// TestX86ScaledIndex: ADD(reg, SHL(reg, 2)) forms a scaled addressing mode
// for a load, cheaper than computing the address into a register.
func TestX86ScaledIndex(t *testing.T) {
	d := MustLoad("x86")
	g := d.Grammar
	l, _ := dp.New(g, d.Env, nil)
	ok := ir.MustParseTree(g, "INDIR(ADD(REG[1], SHL(REG[2], CNST[3])))")
	bad := ir.MustParseTree(g, "INDIR(ADD(REG[1], SHL(REG[2], CNST[7])))")
	reg := g.MustNT("reg")
	cOK := l.LabelResult(ok).CostAt(ok.Roots[0], reg)
	cBad := l.LabelResult(bad).CostAt(bad.Roots[0], reg)
	if cOK >= cBad {
		t.Errorf("scale-3 load (%d) must beat scale-7 load (%d)", cOK, cBad)
	}
}
