// Package ir provides the intermediate representation that instruction
// selection runs on: expression trees (and DAGs) of operator nodes, plus
// builders, a textual tree parser, and seeded random generators used by the
// property tests and synthetic workloads.
//
// The representation is deliberately lcc-like: a compilation unit is a
// Forest — a sequence of statement trees in the order the front end emitted
// them — and nodes are stored in topological (children-before-parents)
// order so that labelers can run a single linear pass, which also covers
// the DAG extension of Ertl (POPL '99).
package ir

import (
	"fmt"
	"strings"

	"repro/internal/grammar"
)

// Node is an IR node. Nodes are immutable after Forest construction.
type Node struct {
	// Op is the operator id, in the vocabulary of the grammar the forest
	// was built against.
	Op grammar.OpID
	// Kids are the children (nil/empty for leaves). In a DAG a node can be
	// a kid of several parents.
	Kids []*Node
	// Val carries the leaf payload: constant value, register number, frame
	// offset, and so on. 0 for non-leaves.
	Val int64
	// Sym carries a symbolic payload (global names, call targets).
	Sym string
	// Index is the node's position in Forest.Nodes. Engines use it to
	// index per-node side tables without storing engine state in nodes.
	Index int
}

// NumKids returns the number of children.
func (n *Node) NumKids() int { return len(n.Kids) }

// OpID implements grammar.DynNode.
func (n *Node) OpID() grammar.OpID { return n.Op }

// Kid implements grammar.DynNode.
func (n *Node) Kid(i int) grammar.DynNode { return n.Kids[i] }

// Value implements grammar.DynNode.
func (n *Node) Value() int64 { return n.Val }

// Same implements grammar.DynNode: node identity.
func (n *Node) Same(o grammar.DynNode) bool {
	on, ok := o.(*Node)
	return ok && on == n
}

var _ grammar.DynNode = (*Node)(nil)

// Forest is a compilation unit: root trees in front-end order, with all
// nodes collected in topological order (every node appears after all of its
// children). Shared subtrees (DAGs) appear once.
type Forest struct {
	Roots []*Node
	Nodes []*Node
}

// NumNodes returns the total node count.
func (f *Forest) NumNodes() int { return len(f.Nodes) }

// String renders all roots, one per line.
func (f *Forest) String(g *grammar.Grammar) string {
	var b strings.Builder
	for i, r := range f.Roots {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeNode(&b, g, r)
	}
	return b.String()
}

func writeNode(b *strings.Builder, g *grammar.Grammar, n *Node) {
	b.WriteString(g.OpName(n.Op))
	if len(n.Kids) == 0 {
		if n.Sym != "" {
			fmt.Fprintf(b, "[%s]", n.Sym)
		} else if n.Val != 0 {
			fmt.Fprintf(b, "[%d]", n.Val)
		}
		return
	}
	b.WriteByte('(')
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteString(", ")
		}
		writeNode(b, g, k)
	}
	b.WriteByte(')')
}

// Builder constructs forests. It assigns topological indices and optionally
// hash-conses nodes so that structurally identical subtrees become shared
// DAG nodes (value numbering).
type Builder struct {
	g     *grammar.Grammar
	nodes []*Node
	roots []*Node
	// valueNumber maps a structural key to an existing node when sharing
	// is enabled.
	valueNumber map[string]*Node
	share       bool
}

// NewBuilder returns a tree builder for grammar g (no subtree sharing).
func NewBuilder(g *grammar.Grammar) *Builder {
	return &Builder{g: g}
}

// NewDAGBuilder returns a builder that value-numbers nodes, so structurally
// identical pure subtrees are shared and the forest is a DAG.
func NewDAGBuilder(g *grammar.Grammar) *Builder {
	return &Builder{g: g, share: true, valueNumber: map[string]*Node{}}
}

// Grammar returns the grammar the builder resolves operator names against.
func (b *Builder) Grammar() *grammar.Grammar { return b.g }

// Node creates (or, when sharing, reuses) a node with the given operator
// name and children. It panics on unknown operators or arity mismatch:
// builders are driven by front ends and tests whose vocabulary must match
// the grammar, so this is a programming error, not an input error.
func (b *Builder) Node(opName string, kids ...*Node) *Node {
	op := b.g.MustOp(opName)
	return b.OpNode(op, 0, "", kids...)
}

// Leaf creates a leaf node with a value payload.
func (b *Builder) Leaf(opName string, val int64) *Node {
	op := b.g.MustOp(opName)
	return b.OpNode(op, val, "")
}

// SymLeaf creates a leaf node with a symbol payload.
func (b *Builder) SymLeaf(opName string, sym string) *Node {
	op := b.g.MustOp(opName)
	return b.OpNode(op, 0, sym)
}

// OpNode creates a node from an already-resolved operator id.
func (b *Builder) OpNode(op grammar.OpID, val int64, sym string, kids ...*Node) *Node {
	if got, want := len(kids), b.g.Arity(op); got != want {
		panic(fmt.Sprintf("ir: operator %s wants %d kids, got %d", b.g.OpName(op), want, got))
	}
	if b.share {
		key := b.key(op, val, sym, kids)
		if n, ok := b.valueNumber[key]; ok {
			return n
		}
		n := b.insert(op, val, sym, kids)
		b.valueNumber[key] = n
		return n
	}
	return b.insert(op, val, sym, kids)
}

func (b *Builder) insert(op grammar.OpID, val int64, sym string, kids []*Node) *Node {
	n := &Node{Op: op, Val: val, Sym: sym, Index: len(b.nodes)}
	if len(kids) > 0 {
		n.Kids = append([]*Node(nil), kids...)
	}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *Builder) key(op grammar.OpID, val int64, sym string, kids []*Node) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%s", op, val, sym)
	for _, k := range kids {
		fmt.Fprintf(&sb, "|%d", k.Index)
	}
	return sb.String()
}

// Root marks n as a statement root of the unit.
func (b *Builder) Root(n *Node) { b.roots = append(b.roots, n) }

// Finish returns the built forest. The builder can keep being used; later
// Finish calls return larger forests.
func (b *Builder) Finish() *Forest {
	return &Forest{Roots: append([]*Node(nil), b.roots...), Nodes: append([]*Node(nil), b.nodes...)}
}

// SingleTree is a convenience for tests: it wraps one root node built with
// b into a forest.
func (b *Builder) SingleTree(root *Node) *Forest {
	return &Forest{Roots: []*Node{root}, Nodes: append([]*Node(nil), b.nodes...)}
}
