package ir_test

import (
	"testing"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
)

// fuzzGrammars are the vocabularies the tree-syntax fuzzer parses
// against: the generic IR vocabulary (x86 carries the full %term set the
// MinC front end emits) and the paper's running example (different
// operator names, smaller arities).
var fuzzGrammars = []*grammar.Grammar{
	md.MustLoad("x86").Grammar,
	md.MustLoad("demo").Grammar,
}

// FuzzParseTree: the textual tree parser must never panic, and any input
// it accepts must round-trip — printing the forest and reparsing the
// print must reach a fixpoint with identical structure. (The first print
// normalizes whitespace and payload spelling; from then on parse/print
// must be stable.)
func FuzzParseTree(f *testing.F) {
	// Seeds: the quickstart/jit examples' trees, corpus-flavored
	// statements, DAG-ish multi-tree input, and malformed fragments.
	for _, seed := range []string{
		"ADD(REG[1], CNST[2])",
		"ASGN(ADDRL[-8], ADD(INDIR(ADDRL[-8]), REG[2]))",
		"INDIR(ADD(REG[1], SHL(REG[2], CNST[3])))",
		"RET(ADD(CNST[100000], CNST[5]))",
		"Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))",
		"Store(Reg, Reg); Store(Reg, Load(Reg))",
		"ASGN(ADDRG[x], CNST[42])\nRET(INDIR(ADDRG[x]))",
		"REG[",
		"ADD(REG)",
		"Plus(Reg, Reg,",
		"NOSUCH(REG)",
		"",
		"  ;;  \n ;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, g := range fuzzGrammars {
			forest, err := ir.ParseTrees(g, src)
			if err != nil {
				continue
			}
			if err := ir.CheckTopo(forest); err != nil {
				t.Fatalf("accepted forest violates topology: %v\ninput: %q", err, src)
			}
			p1 := forest.String(g)
			again, err := ir.ParseTrees(g, p1)
			if err != nil {
				t.Fatalf("printed forest does not reparse: %v\ninput: %q\nprinted: %q", err, src, p1)
			}
			if again.NumNodes() != forest.NumNodes() || len(again.Roots) != len(forest.Roots) {
				t.Fatalf("round-trip changed shape: %d/%d nodes, %d/%d roots\ninput: %q",
					again.NumNodes(), forest.NumNodes(), len(again.Roots), len(forest.Roots), src)
			}
			if p2 := again.String(g); p1 != p2 {
				t.Fatalf("print/parse not a fixpoint:\n first: %q\nsecond: %q\ninput: %q", p1, p2, src)
			}
		}
	})
}
