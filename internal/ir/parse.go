package ir

import (
	"fmt"
	"strconv"

	"repro/internal/grammar"
)

// ParseTree parses an s-expression-like textual tree into a forest with a
// single root, resolving operator names against g. The syntax matches what
// Forest.String produces:
//
//	Store(Reg, Plus(Load(Reg), Const[42]))
//
// Leaves may carry payloads in brackets: a number (Const[42]) or a symbol
// (Addr[x]). Whitespace is free-form. ParseTree builds plain trees (no
// sharing); ParseTrees parses several newline- or semicolon-separated
// trees into one forest.
func ParseTree(g *grammar.Grammar, src string) (*Forest, error) {
	return ParseTrees(g, src)
}

// ParseTrees parses one or more trees separated by newlines or semicolons.
func ParseTrees(g *grammar.Grammar, src string) (*Forest, error) {
	b := NewBuilder(g)
	p := &treeParser{src: src, b: b}
	for {
		p.skipSpace(true)
		if p.pos >= len(p.src) {
			break
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		b.Root(n)
		p.skipSpace(false)
		if p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == '\n' || c == ';' {
				p.pos++
				continue
			}
			return nil, fmt.Errorf("tree:%d: trailing input %q", p.pos, rest(p.src, p.pos))
		}
	}
	f := b.Finish()
	if len(f.Roots) == 0 {
		return nil, fmt.Errorf("tree: empty input")
	}
	return f, nil
}

// MustParseTree is ParseTree for statically known inputs; panics on error.
func MustParseTree(g *grammar.Grammar, src string) *Forest {
	f, err := ParseTree(g, src)
	if err != nil {
		panic(err)
	}
	return f
}

func rest(s string, pos int) string {
	if pos+20 < len(s) {
		return s[pos:pos+20] + "..."
	}
	return s[pos:]
}

type treeParser struct {
	src string
	pos int
	b   *Builder
}

func (p *treeParser) skipSpace(newlines bool) {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' || (newlines && (c == '\n' || c == ';')) {
			p.pos++
			continue
		}
		break
	}
}

func (p *treeParser) parseNode() (*Node, error) {
	p.skipSpace(false)
	start := p.pos
	for p.pos < len(p.src) && isWordChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree:%d: expected operator name, got %q", p.pos, rest(p.src, p.pos))
	}
	name := p.src[start:p.pos]
	op, ok := p.b.Grammar().OpByName(name)
	if !ok {
		return nil, fmt.Errorf("tree:%d: unknown operator %q", start, name)
	}
	var val int64
	var sym string
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		p.pos++
		pstart := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != ']' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("tree:%d: unterminated '['", pstart)
		}
		payload := p.src[pstart:p.pos]
		p.pos++ // ']'
		if v, err := strconv.ParseInt(payload, 10, 64); err == nil {
			val = v
		} else {
			sym = payload
		}
	}
	arity := p.b.Grammar().Arity(op)
	var kids []*Node
	p.skipSpace(false)
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			kid, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			kids = append(kids, kid)
			p.skipSpace(false)
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("tree: unterminated '(' for %s", name)
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("tree:%d: expected ',' or ')', got %q", p.pos, rest(p.src, p.pos))
		}
	}
	if len(kids) != arity {
		return nil, fmt.Errorf("tree: operator %s wants %d kids, got %d", name, arity, len(kids))
	}
	return p.b.OpNode(op, val, sym, kids...), nil
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}

// CheckTopo verifies the children-before-parents invariant of a forest.
// Engines rely on it; tests call it after every builder and parser change.
func CheckTopo(f *Forest) error {
	for i, n := range f.Nodes {
		if n.Index != i {
			return fmt.Errorf("ir: node at position %d has index %d", i, n.Index)
		}
		for _, k := range n.Kids {
			if k.Index >= i {
				return fmt.Errorf("ir: node %d has kid %d out of topological order", i, k.Index)
			}
		}
	}
	seen := map[*Node]bool{}
	for _, n := range f.Nodes {
		seen[n] = true
	}
	var check func(n *Node) error
	check = func(n *Node) error {
		if !seen[n] {
			return fmt.Errorf("ir: reachable node (op %d) missing from Nodes", n.Op)
		}
		for _, k := range n.Kids {
			if err := check(k); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range f.Roots {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a forest for workload tables.
type Stats struct {
	Roots     int
	Nodes     int
	Shared    int // nodes with >1 parent (DAG sharing)
	MaxDepth  int
	LeafNodes int
}

// ComputeStats derives forest statistics.
func ComputeStats(f *Forest) Stats {
	s := Stats{Roots: len(f.Roots), Nodes: len(f.Nodes)}
	parents := make([]int, len(f.Nodes))
	for _, n := range f.Nodes {
		if len(n.Kids) == 0 {
			s.LeafNodes++
		}
		for _, k := range n.Kids {
			parents[k.Index]++
		}
	}
	for _, p := range parents {
		if p > 1 {
			s.Shared++
		}
	}
	depth := make([]int, len(f.Nodes))
	for i, n := range f.Nodes {
		d := 1
		for _, k := range n.Kids {
			if depth[k.Index]+1 > d {
				d = depth[k.Index] + 1
			}
		}
		depth[i] = d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}

// String renders forest statistics compactly.
func (s Stats) String() string {
	return fmt.Sprintf("roots=%d nodes=%d shared=%d depth=%d leaves=%d",
		s.Roots, s.Nodes, s.Shared, s.MaxDepth, s.LeafNodes)
}
