package ir

import (
	"strings"
	"testing"

	"repro/internal/grammar"
)

const demoSrc = `
%name demo
%start stmt
%term Reg(0) Load(1) Plus(2) Store(2)
addr: reg  (0)
reg:  Reg  (0)
reg:  Load(addr) (1)
reg:  Plus(reg, reg) (1)
stmt: Store(addr, reg) (1)
`

func demoGrammar(t testing.TB) *grammar.Grammar {
	t.Helper()
	return grammar.MustParse(demoSrc)
}

func TestBuilderTopo(t *testing.T) {
	g := demoGrammar(t)
	b := NewBuilder(g)
	a := b.Leaf("Reg", 1)
	l := b.Node("Load", a)
	r := b.Leaf("Reg", 2)
	p := b.Node("Plus", l, r)
	s := b.Node("Store", a, p)
	b.Root(s)
	f := b.Finish()
	if err := CheckTopo(f); err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5", f.NumNodes())
	}
	if len(f.Roots) != 1 || f.Roots[0] != s {
		t.Error("root not recorded")
	}
}

func TestBuilderArityPanic(t *testing.T) {
	g := demoGrammar(t)
	b := NewBuilder(g)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	b.Node("Plus", b.Leaf("Reg", 0)) // Plus wants 2 kids
}

func TestDAGBuilderShares(t *testing.T) {
	g := demoGrammar(t)
	b := NewDAGBuilder(g)
	a1 := b.Leaf("Reg", 7)
	a2 := b.Leaf("Reg", 7)
	if a1 != a2 {
		t.Error("identical leaves not shared")
	}
	l1 := b.Node("Load", a1)
	l2 := b.Node("Load", a2)
	if l1 != l2 {
		t.Error("identical subtrees not shared")
	}
	d := b.Leaf("Reg", 8)
	if d == a1 {
		t.Error("different leaves wrongly shared")
	}
	s := b.Node("Store", a1, b.Node("Plus", l1, d))
	b.Root(s)
	f := b.Finish()
	if err := CheckTopo(f); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(f)
	if st.Shared == 0 {
		t.Errorf("expected shared nodes in DAG, stats=%v", st)
	}
}

func TestParseTree(t *testing.T) {
	g := demoGrammar(t)
	f, err := ParseTree(g, "Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTopo(f); err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6 (trees do not share the two Reg[1] leaves)", f.NumNodes())
	}
	out := f.String(g)
	if !strings.Contains(out, "Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))") {
		t.Errorf("round trip failed: %s", out)
	}
}

func TestParseTreesMultiple(t *testing.T) {
	g := demoGrammar(t)
	f, err := ParseTrees(g, "Store(Reg, Reg)\nStore(Reg, Load(Reg)); Reg[5]")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Roots) != 3 {
		t.Errorf("roots = %d, want 3", len(f.Roots))
	}
}

func TestParseTreeSymbols(t *testing.T) {
	g := demoGrammar(t)
	f, err := ParseTree(g, "Load(Reg[base])")
	if err != nil {
		t.Fatal(err)
	}
	leaf := f.Roots[0].Kids[0]
	if leaf.Sym != "base" || leaf.Val != 0 {
		t.Errorf("sym leaf = %q/%d", leaf.Sym, leaf.Val)
	}
}

func TestParseTreeErrors(t *testing.T) {
	g := demoGrammar(t)
	for name, src := range map[string]string{
		"unknown op":   "Frob(Reg)",
		"bad arity":    "Plus(Reg)",
		"unterminated": "Plus(Reg, Reg",
		"empty":        "   ",
		"trailing":     "Reg Reg",
		"open bracket": "Reg[5",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseTree(g, src); err == nil {
				t.Errorf("expected error for %q", src)
			}
		})
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	g := demoGrammar(t)
	cfg := RandomConfig{Seed: 42, Trees: 20, MaxDepth: 6}
	f1 := RandomForest(g, cfg)
	f2 := RandomForest(g, cfg)
	if f1.String(g) != f2.String(g) {
		t.Error("same seed must give the same forest")
	}
	f3 := RandomForest(g, RandomConfig{Seed: 43, Trees: 20, MaxDepth: 6})
	if f1.String(g) == f3.String(g) {
		t.Error("different seeds should give different forests")
	}
	if err := CheckTopo(f1); err != nil {
		t.Fatal(err)
	}
	if len(f1.Roots) != 20 {
		t.Errorf("roots = %d, want 20", len(f1.Roots))
	}
}

func TestRandomForestRootOps(t *testing.T) {
	g := demoGrammar(t)
	store := g.MustOp("Store")
	f := RandomForest(g, RandomConfig{Seed: 1, Trees: 15, MaxDepth: 5, RootOps: []grammar.OpID{store}})
	for _, r := range f.Roots {
		if r.Op != store {
			t.Fatalf("root op = %s, want Store", g.OpName(r.Op))
		}
	}
}

func TestRandomForestShared(t *testing.T) {
	g := demoGrammar(t)
	f := RandomForest(g, RandomConfig{Seed: 5, Trees: 50, MaxDepth: 6, Share: true, MaxLeafVal: 3})
	if err := CheckTopo(f); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(f)
	if st.Shared == 0 {
		t.Errorf("DAG workload should share nodes: %v", st)
	}
}

func TestStatsDepth(t *testing.T) {
	g := demoGrammar(t)
	f := MustParseTree(g, "Store(Reg, Plus(Load(Reg), Reg))")
	st := ComputeStats(f)
	if st.MaxDepth != 4 {
		t.Errorf("depth = %d, want 4", st.MaxDepth)
	}
	if st.LeafNodes != 3 {
		t.Errorf("leaves = %d, want 3", st.LeafNodes)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}
