package ir

import (
	"math/rand"

	"repro/internal/grammar"
)

// RandomConfig controls random forest generation. Generation is fully
// deterministic for a given seed, which the property tests and synthetic
// workloads rely on.
type RandomConfig struct {
	// Seed for the private PRNG.
	Seed int64
	// Trees is the number of root trees to generate.
	Trees int
	// MaxDepth bounds tree depth; below it the generator biases toward
	// leaves as depth grows, giving realistic bushy-but-finite shapes.
	MaxDepth int
	// RootOps optionally restricts the operators used at tree roots
	// (e.g. statement operators). Empty means any operator.
	RootOps []grammar.OpID
	// InnerOps optionally restricts the non-leaf operators used below the
	// root (e.g. expression operators, so statement operators do not
	// appear in expression position and every root stays derivable).
	InnerOps []grammar.OpID
	// LeafOps optionally restricts the leaf operators (e.g. value leaves
	// only, so label/nop leaves do not end up in expression position).
	LeafOps []grammar.OpID
	// Share, when true, value-numbers subtrees so the result is a DAG.
	Share bool
	// MaxLeafVal bounds generated leaf payload values (inclusive). Leaf
	// payloads exercise immediate-range dynamic costs. Zero means 255.
	MaxLeafVal int64
}

// RandomForest generates a pseudo-random forest over g's operator
// vocabulary. Every operator of the grammar can appear; children are
// arbitrary, so the trees exercise the full labeling state space without
// regard to derivability from the start nonterminal (cost tables for all
// nonterminals remain comparable across engines, which is what the
// property tests check).
func RandomForest(g *grammar.Grammar, cfg RandomConfig) *Forest {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Trees <= 0 {
		cfg.Trees = 1
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MaxLeafVal <= 0 {
		cfg.MaxLeafVal = 255
	}
	var b *Builder
	if cfg.Share {
		b = NewDAGBuilder(g)
	} else {
		b = NewBuilder(g)
	}

	var leaves, inner []grammar.OpID
	for i := range g.Ops {
		if g.Ops[i].Arity == 0 {
			leaves = append(leaves, grammar.OpID(i))
		} else {
			inner = append(inner, grammar.OpID(i))
		}
	}
	if len(cfg.InnerOps) > 0 {
		inner = nil
		for _, op := range cfg.InnerOps {
			if g.Arity(op) > 0 {
				inner = append(inner, op)
			}
		}
	}
	if len(cfg.LeafOps) > 0 {
		leaves = nil
		for _, op := range cfg.LeafOps {
			if g.Arity(op) == 0 {
				leaves = append(leaves, op)
			}
		}
	}
	if len(leaves) == 0 {
		// A grammar without leaf operators cannot label any finite tree;
		// return an empty forest rather than looping forever.
		return b.Finish()
	}

	var gen func(depth int) *Node
	gen = func(depth int) *Node {
		pickLeaf := len(inner) == 0 || depth >= cfg.MaxDepth ||
			rng.Intn(cfg.MaxDepth) < depth
		if pickLeaf {
			op := leaves[rng.Intn(len(leaves))]
			return b.OpNode(op, rng.Int63n(cfg.MaxLeafVal+1), "")
		}
		op := inner[rng.Intn(len(inner))]
		kids := make([]*Node, g.Arity(op))
		for i := range kids {
			kids[i] = gen(depth + 1)
		}
		return b.OpNode(op, 0, "", kids...)
	}

	for t := 0; t < cfg.Trees; t++ {
		var root *Node
		if len(cfg.RootOps) > 0 {
			op := cfg.RootOps[rng.Intn(len(cfg.RootOps))]
			kids := make([]*Node, g.Arity(op))
			for i := range kids {
				kids[i] = gen(1)
			}
			root = b.OpNode(op, 0, "", kids...)
		} else {
			root = gen(0)
		}
		b.Root(root)
	}
	return b.Finish()
}
