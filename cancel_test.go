// Cancellation-contract tests for the v2 context-first API: a cancelled
// context stops compilation cooperatively — before labeling when already
// cancelled, at a reducer checkpoint within a bounded number of nodes when
// cancelled mid-cover, and between functions in unit compilation.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/grammar"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// TestCompilePreCancelled: an already-ended context never starts work —
// no labeling, no reduction, typed ctx.Err() back.
func TestCompilePreCancelled(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	c := &metrics.Counters{}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{Metrics: c})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sel.Compile(ctx, f); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compile on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := sel.Compile(ctx, f, repro.CostOnly()); !errors.Is(err, context.Canceled) {
		t.Fatalf("CostOnly Compile on cancelled ctx = %v, want context.Canceled", err)
	}
	unit, err := m.CompileMinC("int main() { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.CompileUnit(ctx, unit); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompileUnit on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := sel.CompileUnit(ctx, unit, repro.WithWorkers(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel CompileUnit on cancelled ctx = %v, want context.Canceled", err)
	}
	if c.NodesLabeled != 0 || c.NodesReduced != 0 {
		t.Errorf("cancelled calls did work: %v", c)
	}
}

// TestCoverCancelsWithinCheckpoint pins the bound the reducer promises:
// once the context ends mid-cover, at most CancelCheckInterval more
// (node, nonterminal) visits happen before the walk aborts with ctx.Err().
// The forest is a huge flat expression chain, far larger than the
// checkpoint interval, and the visitor cancels at a fixed visit — fully
// deterministic, single-goroutine.
func TestCoverCancelsWithinCheckpoint(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	// A deep ADD chain: REG[1] + 1 + 1 + ... (tens of thousands of nodes).
	const adds = 40000
	var sb strings.Builder
	sb.WriteString("RET(")
	for i := 0; i < adds; i++ {
		sb.WriteString("ADD(")
	}
	sb.WriteString("REG[1]")
	for i := 0; i < adds; i++ {
		fmt.Fprintf(&sb, ", CNST[%d])", i%7)
	}
	sb.WriteString(")")
	f, err := m.ParseTree(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := sel.Label(f)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(m.Grammar, m.Env, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the full cover visits far more combinations than the
	// cancellation bound, or this test proves nothing.
	full := &metrics.Counters{}
	if _, err := rd.CoverContext(context.Background(), f, lab, nil, full); err != nil {
		t.Fatal(err)
	}
	if full.NodesReduced < 4*reduce.CancelCheckInterval {
		t.Fatalf("forest too small to observe the checkpoint bound: %d visits", full.NodesReduced)
	}

	const cancelAt = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cm := &metrics.Counters{}
	fired := 0
	visitsAtCancel := int64(-1)
	_, err = rd.CoverContext(ctx, f, lab, func(n *repro.Node, nt grammar.NT, r *grammar.Rule) {
		if fired++; fired == cancelAt {
			cancel()
			// The visitor runs inline on the covering goroutine, so this
			// read is an exact snapshot of the visit count at cancellation.
			visitsAtCancel = cm.NodesReduced
		}
	}, cm)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled cover = %v, want context.Canceled", err)
	}
	if visitsAtCancel < 0 {
		t.Fatal("cover finished before the visitor could cancel")
	}
	// After the cancel, the walk may run to the end of its current
	// checkpoint window — at most one full interval of further visits.
	extra := cm.NodesReduced - visitsAtCancel
	if extra > reduce.CancelCheckInterval {
		t.Errorf("cover visited %d more combinations after cancellation, want <= %d",
			extra, reduce.CancelCheckInterval)
	}
	if cm.NodesReduced >= full.NodesReduced {
		t.Errorf("cancelled cover did all %d visits of the full cover", full.NodesReduced)
	}
	t.Logf("full cover: %d visits; cancelled at visit %d: %d extra visits before stopping (interval %d)",
		full.NodesReduced, visitsAtCancel, extra, reduce.CancelCheckInterval)
}

// TestCoverCancelsAcrossManyRoots: the checkpoint counter spans roots —
// a forest of thousands of tiny trees (each far below one checkpoint
// interval) must still stop within the bound, not run to completion
// because every root resets the poll cadence.
func TestCoverCancelsAcrossManyRoots(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	const trees = 20000
	var sb strings.Builder
	for i := 0; i < trees; i++ {
		fmt.Fprintf(&sb, "RET(ADD(REG[1], CNST[%d]))\n", i%5)
	}
	f, err := m.ParseTree(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := sel.Label(f)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(m.Grammar, m.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cm := &metrics.Counters{}
	fired := 0
	visitsAtCancel := int64(-1)
	_, err = rd.CoverContext(ctx, f, lab, func(n *repro.Node, nt grammar.NT, r *grammar.Rule) {
		if fired++; fired == 500 {
			cancel()
			visitsAtCancel = cm.NodesReduced
		}
	}, cm)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled many-root cover = %v, want context.Canceled", err)
	}
	extra := cm.NodesReduced - visitsAtCancel
	if extra > reduce.CancelCheckInterval {
		t.Errorf("many-root cover visited %d more combinations after cancellation, want <= %d",
			extra, reduce.CancelCheckInterval)
	}
	t.Logf("many-root cover: cancelled at visit %d, %d extra visits (interval %d)",
		visitsAtCancel, extra, reduce.CancelCheckInterval)
}

// TestCompileUnitCancelsBetweenFunctions: cancellation raised while one
// function compiles stops the unit loop at the next per-function
// checkpoint — later functions are never labeled.
func TestCompileUnitCancelsBetweenFunctions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The dynamic-cost hook runs during labeling; the magic immediate 99
	// appears only in the second function, so the cancel fires there.
	env := repro.DynEnv{"trip": func(n repro.DynNode) repro.Cost {
		if n.Value() == 99 {
			cancel()
		}
		return 1
	}}
	m, err := repro.NewMachine("trip", `%name trip
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn trip)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build a "unit": four single-statement forests compiled through
	// the sequential per-function loop via repeated Compile, mirroring
	// CompileUnit's checkpoint, then the real CompileUnit over a lowered
	// unit for the x86 path below.
	forests := make([]*repro.Forest, 4)
	for i := range forests {
		val := 7
		if i == 1 {
			val = 99
		}
		f, err := m.ParseTree(fmt.Sprintf("Asgn(Reg[1], Cnst[%d])", val))
		if err != nil {
			t.Fatal(err)
		}
		forests[i] = f
	}
	compiled := 0
	var firstErr error
	for _, f := range forests {
		if err := ctx.Err(); err != nil {
			firstErr = err
			break
		}
		if _, err := sel.Compile(ctx, f); err != nil {
			firstErr = err
			break
		}
		compiled++
	}
	if !errors.Is(firstErr, context.Canceled) {
		t.Fatalf("loop error = %v, want context.Canceled", firstErr)
	}
	// Function 0 compiled; function 1 tripped the cancel (its own small
	// cover may still have finished); functions 2 and 3 never started.
	if compiled > 2 {
		t.Errorf("compiled %d functions after cancellation in the second", compiled)
	}
}
