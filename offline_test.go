package repro_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/server"

	// Registers the committed ahead-of-time tables for demo.fixed and
	// jit64.fixed, so this binary also exercises the compiled-in preload
	// path of the offline engine.
	_ "repro/internal/gen/precompiled"
)

// writeBlob compiles m's grammar ahead of time and writes the `.isel`
// blob — what `iselgen -machine <m> -fixed -out <path>` produces.
func writeBlob(t *testing.T, m *repro.Machine, path string) {
	t.Helper()
	res, err := gen.Compile(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOfflineRoundTrip: for every machine description, a selector loading
// a generated `.isel` blob must be indistinguishable from one whose
// tables were generated in-process, and from the static engine — same
// labels, same costs, same emitted code, blob or no blob.
func TestOfflineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range repro.Machines() {
		t.Run(name, func(t *testing.T) {
			m, err := repro.LoadMachine(name)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := m.FixedMachine()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name+".isel")
			writeBlob(t, fixed, path)
			fromBlob, err := fixed.NewSelector(repro.KindOffline, repro.Options{PreloadPath: path})
			if err != nil {
				t.Fatal(err)
			}
			inProc, err := fixed.NewSelector(repro.KindOffline, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			static, err := fixed.NewSelector(repro.KindStatic, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if fromBlob.States() != inProc.States() || fromBlob.States() != static.States() {
				t.Fatalf("states: blob %d, in-process %d, static %d",
					fromBlob.States(), inProc.States(), static.States())
			}
			roots, inner, leaf := opSplit(fixed.Grammar)
			for seed := 0; seed < 50; seed++ {
				f := ir.RandomForest(fixed.Grammar, diffConfig(seed, roots, inner, leaf))
				labBlob, err := fromBlob.Label(f)
				if err != nil {
					t.Fatal(err)
				}
				labProc, err := inProc.Label(f)
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range f.Nodes {
					for nt := 0; nt < fixed.Grammar.NumNonterms(); nt++ {
						if labBlob.RuleAt(n, grammar.NT(nt)) != labProc.RuleAt(n, grammar.NT(nt)) {
							t.Fatalf("seed %d node %d nt %d: blob-loaded tables disagree with in-process generation",
								seed, n.Index, nt)
						}
					}
				}
				outBlob, errBlob := fromBlob.Compile(context.Background(), f)
				outStatic, errStatic := static.Compile(context.Background(), f)
				if (errBlob == nil) != (errStatic == nil) {
					t.Fatalf("seed %d: blob err=%v static err=%v", seed, errBlob, errStatic)
				}
				if errBlob == nil && (outBlob.Asm != outStatic.Asm || outBlob.Cost != outStatic.Cost) {
					t.Fatalf("seed %d: blob-loaded output differs from static automaton", seed)
				}
			}
		})
	}
}

// TestOfflineServesOldFormatVersion: the differential guarantee must hold
// across wire versions — an offline selector loading a fixed-width v1
// blob (what an un-upgraded fleet member still ships over the blob
// exchange) labels and emits identically to one loading the current
// varint v2 form.
func TestOfflineServesOldFormatVersion(t *testing.T) {
	dir := t.TempDir()
	for _, name := range repro.Machines() {
		t.Run(name, func(t *testing.T) {
			m, err := repro.LoadMachine(name)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := m.FixedMachine()
			if err != nil {
				t.Fatal(err)
			}
			res, err := gen.Compile(fixed.Grammar, gen.Config{})
			if err != nil {
				t.Fatal(err)
			}
			v1, err := gen.EncodeBytesV1(fixed.Grammar, res.Tables)
			if err != nil {
				t.Fatal(err)
			}
			pathV1 := filepath.Join(dir, name+".v1.isel")
			pathV2 := filepath.Join(dir, name+".v2.isel")
			if err := os.WriteFile(pathV1, v1, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(pathV2, res.Blob, 0o644); err != nil {
				t.Fatal(err)
			}
			fromV1, err := fixed.NewSelector(repro.KindOffline, repro.Options{PreloadPath: pathV1})
			if err != nil {
				t.Fatal(err)
			}
			fromV2, err := fixed.NewSelector(repro.KindOffline, repro.Options{PreloadPath: pathV2})
			if err != nil {
				t.Fatal(err)
			}
			roots, inner, leaf := opSplit(fixed.Grammar)
			for seed := 0; seed < 25; seed++ {
				f := ir.RandomForest(fixed.Grammar, diffConfig(seed, roots, inner, leaf))
				out1, err1 := fromV1.Compile(context.Background(), f)
				out2, err2 := fromV2.Compile(context.Background(), f)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d: v1 err=%v v2 err=%v", seed, err1, err2)
				}
				if err1 == nil && (out1.Asm != out2.Asm || out1.Cost != out2.Cost) {
					t.Fatalf("seed %d: v1-loaded tables compile differently from v2-loaded ones", seed)
				}
			}
		})
	}
}

// TestOfflineRejectsDynamicAndWrongBlob: the offline kind refuses
// dynamic-cost grammars and blobs generated for another grammar.
func TestOfflineRejectsDynamicAndWrongBlob(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSelector(repro.KindOffline, repro.Options{}); err == nil {
		t.Fatal("offline selector constructed on a grammar with dynamic rules")
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	otherM, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	otherFixed, err := otherM.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.isel")
	writeBlob(t, otherFixed, path)
	if _, err := fixed.NewSelector(repro.KindOffline, repro.Options{PreloadPath: path}); err == nil {
		t.Fatal("offline selector accepted tables generated for a different grammar")
	}
}

// TestOfflinePreloadRegistered: with the precompiled package imported,
// demo.fixed constructs from the compiled-in blob — no PreloadPath, no
// closure computation — and still agrees with static.
func TestOfflinePreloadRegistered(t *testing.T) {
	if _, ok := gen.Lookup(gen.Fingerprint(mustFixed(t, "demo").Grammar)); !ok {
		t.Fatal("precompiled demo.fixed tables not registered")
	}
	fixed := mustFixed(t, "demo")
	off, err := fixed.NewSelector(repro.KindOffline, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := fixed.NewSelector(repro.KindStatic, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.States() != static.States() || off.Transitions() != static.Transitions() {
		t.Fatalf("preloaded tables (%d states, %d trans) differ from generated (%d, %d)",
			off.States(), off.Transitions(), static.States(), static.Transitions())
	}
}

func mustFixed(t *testing.T, name string) *repro.Machine {
	t.Helper()
	m, err := repro.LoadMachine(name)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	return fixed
}

// statsStates fetches /stats and returns the one served machine's
// states/transitions plus its engine kind.
func statsStates(t *testing.T, url string) (states, trans int, kind string) {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Machines) != 1 {
		t.Fatalf("stats machines = %d, want 1", len(st.Machines))
	}
	return st.Machines[0].States, st.Machines[0].Transitions, st.Machines[0].Kind
}

// TestOfflinePreloadServesWarm is the acceptance check end to end:
// loading a generated `.isel` blob yields a served machine whose first
// request is already warm — /stats reports the full table before any
// traffic and exactly zero construction under it.
func TestOfflinePreloadServesWarm(t *testing.T) {
	fixed := mustFixed(t, "demo")
	fixed.Name = "demo" // serve under the requested name, like iselserver -preload
	path := filepath.Join(t.TempDir(), "demo.isel")
	writeBlob(t, fixed, path)

	reg := repro.NewRegistry()
	if err := reg.AddMachine(fixed, repro.KindOffline, repro.Options{PreloadPath: path}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("demo"); err != nil { // boot-time construction, like iselserver
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 2})
	defer srv.Shutdown()
	hs := httptest.NewServer(server.NewHandler(srv))
	defer hs.Close()

	before, beforeTrans, kind := statsStates(t, hs.URL)
	if kind != string(repro.KindOffline) {
		t.Fatalf("served kind = %q, want offline", kind)
	}
	if before == 0 || beforeTrans == 0 {
		t.Fatalf("machine not warm before traffic: %d states, %d transitions", before, beforeTrans)
	}

	body := `{"client":"t","trees":"Store(Reg[1], Plus(Reg[2], Reg[3]))"}`
	resp, err := http.Post(hs.URL+"/compile?machine=demo", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	var cr server.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Outputs) != 1 || cr.Outputs[0].Asm == "" {
		t.Fatalf("no code emitted: %+v", cr)
	}
	if cr.States != before {
		t.Fatalf("first request constructed states: %d -> %d, want 0 construction under traffic", before, cr.States)
	}

	after, afterTrans, _ := statsStates(t, hs.URL)
	if after != before || afterTrans != beforeTrans {
		t.Fatalf("traffic grew the tables: states %d -> %d, transitions %d -> %d (want unchanged)",
			before, after, beforeTrans, afterTrans)
	}
}

// TestEvictOverHTTP: POST /evict resets a machine's engine — /stats
// shows it unconstructed, the next request rebuilds it.
func TestEvictOverHTTP(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 2})
	defer srv.Shutdown()
	hs := httptest.NewServer(server.NewHandler(srv))
	defer hs.Close()

	body := `{"client":"t","minc":"int f(int a) { return a + 2; }"}`
	resp, err := http.Post(hs.URL+"/compile?machine=jit64", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	if states, _, _ := statsStates(t, hs.URL); states == 0 {
		t.Fatal("no states after traffic")
	}

	resp, err = http.Post(hs.URL+"/evict?machine=jit64", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict status = %d", resp.StatusCode)
	}
	var st server.StatsResponse
	r2, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.Machines[0].Constructed {
		t.Fatal("machine still constructed after /evict")
	}
	// Next job reconstructs transparently.
	resp, err = http.Post(hs.URL+"/compile?machine=jit64", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile after evict status = %d", resp.StatusCode)
	}

	resp, err = http.Post(hs.URL+"/evict?machine=ghost", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evict unknown machine status = %d, want 404", resp.StatusCode)
	}
}
