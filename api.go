// Package repro is the public face of the reproduction of "Fast and
// Flexible Instruction Selection with On-Demand Tree-Parsing Automata"
// (Ertl, Casey, Gregg; PLDI 2006): BURS instruction selection with three
// interchangeable labeling engines —
//
//   - KindDP: iburg/lburg-style dynamic programming at selection time
//     (flexible, supports dynamic costs, slow per node);
//   - KindStatic: a burg-style offline automaton (fast per node, no
//     dynamic costs, tables built ahead of time);
//   - KindOnDemand: the paper's contribution — the automaton is built
//     lazily at selection time, giving (warm) static-automaton speed
//     *and* dynamic costs;
//   - KindOffline: tables compiled ahead of time by the offline generator
//     (internal/gen, fronted by cmd/iselgen) and loaded at construction —
//     zero construction cost under traffic, no dynamic costs. The fourth
//     engine, registered exactly the way downstream experiments are told
//     to plug variants in.
//
// Typical use (the v2 context-first surface):
//
//	m, _ := repro.LoadMachine("x86")
//	sel, _ := m.NewSelector(repro.KindOnDemand, repro.Options{})
//	unit, _ := m.CompileMinC(src)           // or m.ParseTree("ADD(REG[1], CNST[2])")
//	out, _ := sel.Compile(ctx, unit.Funcs[0].Forest)
//	fmt.Println(out.Asm, out.Cost)
//
// Compile and CompileUnit take a context.Context plus functional options:
// WithCounters(c) attributes this one call's work to c (the compilation
// server's per-client accounting), CostOnly() skips emission (the cheap
// experiment path), WithWorkers(n) compiles a unit's functions across n
// goroutines sharing the selector's one engine. Cancellation is
// cooperative: the reducer polls ctx.Done() every few hundred nodes and
// unit compilation checks between functions, so a cancelled call returns
// ctx.Err() within a bounded amount of work. A background context costs
// nothing on the warm path.
//
// For serving several machine descriptions from one process, Registry
// holds named, lazily-constructed, individually-warmed selectors (with
// optional automaton persistence across restarts); internal/server and
// cmd/iselserver are built on it.
//
// # Engines and the Labeler interface
//
// Every engine implements reduce.Labeler — Label plus the
// NumStates/NumTransitions/MemoryBytes table stats — and Selector
// dispatches exclusively through that interface. Engine kinds are bound
// by a constructor registry: RegisterEngine adds a fourth kind without
// touching any Selector code, which is how downstream experiments plug in
// engine variants.
//
// # Concurrency
//
// Selectors are safe for concurrent use: Compile, CompileUnit and Label
// may be called from many goroutines sharing one selector. All built-in
// engines support concurrent labeling — the on-demand engine synchronizes
// its construct slow path internally (see package core), which is the
// paper's scenario extended to a parallel compilation server: one warm
// automaton serving every worker, each worker's misses warming the tables
// for all. CompileUnit with WithWorkers is the built-in driver for that
// shape; internal/server (fronted by cmd/iselserver) is the full
// compilation server built on a Registry of such selectors, using
// WithCounters and Snapshot to attribute each shared engine's work to
// individual clients and to report automaton warmth over a session.
// Only selector-wide reconfiguration (LoadAutomaton) must be serialized
// against in-flight compilation.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/emit"
	"repro/internal/frontend"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
	"repro/internal/telemetry"
)

// Re-exported core types, so API users can name them.
type (
	// Grammar is a validated, normal-form tree grammar.
	Grammar = grammar.Grammar
	// Cost is a rule or derivation cost.
	Cost = grammar.Cost
	// DynEnv binds dynamic-cost function names to implementations.
	DynEnv = grammar.DynEnv
	// DynNode is the node view dynamic-cost functions receive.
	DynNode = grammar.DynNode
	// Forest is a compilation unit of IR trees (or DAGs).
	Forest = ir.Forest
	// Node is an IR node.
	Node = ir.Node
	// Unit is a lowered MinC compilation unit.
	Unit = frontend.Unit
	// Counters are the deterministic work counters engines maintain.
	Counters = metrics.Counters
	// Builder constructs IR forests programmatically (trees, and DAGs via
	// NewDAGBuilder-style sharing through Machine.NewDAGBuilder).
	Builder = ir.Builder
	// Labeler is the engine interface every selector kind implements:
	// labeling plus automaton table statistics.
	Labeler = reduce.Labeler
	// Trace is a per-request stage timeline (lease, queue, label,
	// reduce, emit). Compile stamps it at stage boundaries under
	// WithTrace/CompileObserved; the compilation server pools and
	// aggregates them (see internal/telemetry).
	Trace = telemetry.Trace
)

// Inf is the infinite cost (rule not applicable).
const Inf = grammar.Inf

// Kind selects a labeling engine.
type Kind string

// The three engines of the paper's comparison. KindOffline (offline.go)
// is the fourth registered kind: ahead-of-time tables loaded from
// iselgen output.
const (
	KindDP       Kind = "dp"
	KindStatic   Kind = "static"
	KindOnDemand Kind = "ondemand"
)

// EngineConstructor builds a labeling engine for a machine. Constructors
// receive the full Options so engine-specific knobs (DeltaCap, ForceHash,
// Metrics) reach them without Selector knowing which engine wants what.
type EngineConstructor func(m *Machine, opt Options) (Labeler, error)

var (
	engineCtors = map[Kind]EngineConstructor{}
	engineKinds []Kind // registration order, for stable listings
)

// RegisterEngine binds kind to an engine constructor. Registering a kind
// twice panics: kinds are process-global identifiers. Call from an init
// function; registration is not synchronized against concurrent
// NewSelector calls.
func RegisterEngine(kind Kind, ctor EngineConstructor) {
	if _, dup := engineCtors[kind]; dup {
		panic(fmt.Sprintf("repro: engine kind %q registered twice", kind))
	}
	engineCtors[kind] = ctor
	engineKinds = append(engineKinds, kind)
}

func init() {
	RegisterEngine(KindDP, func(m *Machine, opt Options) (Labeler, error) {
		l, err := dp.New(m.Grammar, m.Env, opt.Metrics)
		if err != nil {
			return nil, err
		}
		return l, nil
	})
	RegisterEngine(KindStatic, func(m *Machine, opt Options) (Labeler, error) {
		a, err := automaton.Generate(m.Grammar, automaton.StaticConfig{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics,
		})
		if err != nil {
			return nil, err
		}
		return a, nil
	})
	RegisterEngine(KindOnDemand, func(m *Machine, opt Options) (Labeler, error) {
		e, err := core.New(m.Grammar, m.Env, core.Config{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics, ForceHash: opt.ForceHash,
			MaxStates: opt.MaxStates,
		})
		if err != nil {
			return nil, err
		}
		return e, nil
	})
}

// Kinds lists the registered engine kinds in registration order (the
// three built-ins first).
func Kinds() []Kind { return append([]Kind(nil), engineKinds...) }

// Machine is a loaded machine description: grammar plus dynamic-cost
// bindings.
type Machine struct {
	Name    string
	Grammar *Grammar
	Env     DynEnv
}

// Machines lists the built-in machine descriptions.
func Machines() []string { return md.Names() }

// LoadMachine loads a built-in machine description by name
// ("x86", "mips", "sparc", "alpha", "jit64", "demo").
func LoadMachine(name string) (*Machine, error) {
	d, err := md.Load(name)
	if err != nil {
		return nil, err
	}
	return &Machine{Name: name, Grammar: d.Grammar, Env: d.Env}, nil
}

// NewMachine builds a machine from a burg-style grammar source and an
// environment for its dynamic-cost names (env may be nil if the grammar
// has none).
func NewMachine(name, grammarSrc string, env DynEnv) (*Machine, error) {
	g, err := grammar.Parse(grammarSrc)
	if err != nil {
		return nil, err
	}
	if _, err := env.Bind(g); err != nil {
		return nil, err
	}
	if name != "" {
		g.Name = name
	}
	return &Machine{Name: g.Name, Grammar: g, Env: env}, nil
}

// ParseTree parses textual IR trees (see ir.ParseTrees syntax) against the
// machine's operator vocabulary.
func (m *Machine) ParseTree(src string) (*Forest, error) {
	return ir.ParseTrees(m.Grammar, src)
}

// NewBuilder returns a tree builder over the machine's operators.
func (m *Machine) NewBuilder() *Builder { return ir.NewBuilder(m.Grammar) }

// NewDAGBuilder returns a builder that value-numbers pure subtrees, so
// structurally identical subtrees are shared (DAG construction).
func (m *Machine) NewDAGBuilder() *Builder { return ir.NewDAGBuilder(m.Grammar) }

// CompileMinC parses and lowers a MinC program to IR forests (one per
// function).
func (m *Machine) CompileMinC(src string) (*Unit, error) {
	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return frontend.Lower(prog, m.Grammar)
}

// CompileUnitParallel compiles every function of unit with sel across
// workers goroutines sharing sel's one engine — the compilation-server
// scenario: for the on-demand kind, every worker's misses warm the same
// automaton.
//
// Deprecated: use sel.CompileUnit(ctx, unit, WithWorkers(workers)).
func (m *Machine) CompileUnitParallel(sel *Selector, unit *Unit, workers int) ([]*Output, error) {
	if sel.Machine() != m {
		return nil, fmt.Errorf("repro: selector belongs to machine %q, not %q", sel.Machine().Name, m.Name)
	}
	return sel.CompileUnitParallel(unit, workers)
}

// Options tunes selector construction.
type Options struct {
	// Metrics, when non-nil, receives the engine's event counts.
	Metrics *Counters
	// DeltaCap bounds relative costs in automaton states (default
	// automaton.DefaultDeltaCap). Only meaningful for the automaton kinds.
	DeltaCap Cost
	// ForceHash routes all on-demand transitions through the hash table
	// (the table-layout ablation). Only meaningful for KindOnDemand.
	ForceHash bool
	// MaxStates bounds the number of automaton states the on-demand engine
	// may materialize (0 = unlimited): the cap policy for pathological
	// grammars in long-lived servers. A compile whose labeling would grow
	// the state table past the budget fails with an error matching
	// ErrStateBudget (errors.Is); warm traffic over already-materialized
	// states keeps compiling at the cap. Only meaningful for KindOnDemand.
	// For KindOffline it bounds ahead-of-time closure computation instead:
	// a pruned closure fails construction with truncation diagnostics.
	MaxStates int
	// PreloadPath, for KindOffline, loads the precompiled automaton from
	// this `.isel` blob (written by cmd/iselgen) instead of computing the
	// closure at construction — the instant-warm serving path. The blob
	// must match the machine's grammar fingerprint.
	PreloadPath string
}

// ErrStateBudget is the typed error a compile fails with when
// Options.MaxStates is set and labeling would materialize more states than
// the budget allows. Match it with errors.Is; cmd/iselserver surfaces it
// as HTTP 503.
var ErrStateBudget = core.ErrStateBudget

// Selector is an instruction selector: a labeling engine plus the shared
// reducer and a pool of emitters. Selectors persist across Compile calls —
// for KindOnDemand that is the point: the automaton warms up over a
// compilation session. Selectors are safe for concurrent use (see the
// package documentation for the contract).
type Selector struct {
	kind    Kind
	machine *Machine
	m       *Counters

	eng reduce.Labeler
	rd  *reduce.Reducer
	// emitters recycles emit.Emitter instances across Compile calls.
	// Outputs are interned or copied out before an emitter returns to the
	// pool, so per-call isolation is preserved.
	emitters sync.Pool
	// intern canonicalizes emitted assembly text across the selector's
	// pooled emitters: a warm Compile of previously seen code returns the
	// retained string instead of allocating a fresh copy — the last piece
	// of the zero-allocs-per-node warm Compile contract.
	intern *emit.Interner
}

// NewSelector builds a selector of the given kind (any registered kind;
// see RegisterEngine).
//
// KindStatic fails for grammars with dynamic-cost rules — that is the
// limitation the paper lifts; use StripDynamic (via NewSelectorFixed) or
// KindOnDemand.
func (m *Machine) NewSelector(kind Kind, opt Options) (*Selector, error) {
	ctor, ok := engineCtors[kind]
	if !ok {
		return nil, fmt.Errorf("repro: unknown selector kind %q", kind)
	}
	rd, err := reduce.New(m.Grammar, m.Env, opt.Metrics)
	if err != nil {
		return nil, err
	}
	eng, err := ctor(m, opt)
	if err != nil {
		return nil, err
	}
	s := &Selector{kind: kind, machine: m, m: opt.Metrics, eng: eng, rd: rd, intern: newInterner()}
	s.emitters.New = func() any { return emitterFor(m.Grammar, s.intern) }
	return s, nil
}

// FixedMachine returns a copy of the machine with all dynamic-cost rules
// removed — the grammar an offline automaton can tabulate, and the
// baseline for the code-quality experiment.
func (m *Machine) FixedMachine() (*Machine, error) {
	g, err := m.Grammar.StripDynamic()
	if err != nil {
		return nil, err
	}
	return &Machine{Name: m.Name + ".fixed", Grammar: g, Env: nil}, nil
}

// Kind returns the selector's engine kind.
func (s *Selector) Kind() Kind { return s.kind }

// Machine returns the selector's machine.
func (s *Selector) Machine() *Machine { return s.machine }

// Labeler exposes the selector's engine through the common interface, for
// lower-level tooling and engine-specific type assertions.
func (s *Selector) Labeler() Labeler { return s.eng }

// Output is the result of compiling one forest.
type Output struct {
	// Asm is the emitted assembly text.
	Asm string
	// Instructions is the number of emitted instructions.
	Instructions int
	// Cost is the total cost of the selected derivation.
	Cost Cost
}

// Label runs only the labeling pass and returns the labeling for use with
// lower-level tooling. Most callers want Compile. The returned labeling is
// caller-owned: engines that implement reduce.LabelingRecycler will reuse
// its buffers if it is handed back via ReleaseLabeling, but keeping it is
// always safe.
func (s *Selector) Label(f *Forest) (reduce.Labeling, error) {
	return s.labelChecked(f, nil, 0)
}

// CompileOption tunes one Compile or CompileUnit call. Options compose:
// Compile(ctx, f, WithCounters(c), CostOnly()) is a metered cost-only
// selection.
type CompileOption func(*compileConfig)

// compileConfig is the resolved option set of one call. The deprecated
// shims construct it directly (no variadic slice, no closures), which is
// what keeps the warm SelectCost path at exactly zero allocations.
type compileConfig struct {
	counters *Counters
	costOnly bool
	workers  int
	// trace, when non-nil, receives stage-boundary stamps (label,
	// reduce, emit). A nil trace costs one pointer test per boundary.
	trace *telemetry.Trace
}

// WithCounters attributes this one call's labeling and reduction events to
// c instead of the selector's configured Options.Metrics sink. c may be a
// fresh Counters per call; callers merge deltas with Counters.Add. This is
// the session hook the compilation server (internal/server) uses to
// account one shared warm engine's work to individual clients.
func WithCounters(c *Counters) CompileOption {
	return func(cfg *compileConfig) { cfg.counters = c }
}

// WithTrace records this call's stage boundaries into tr, which must
// have been Begin()-stamped (telemetry.TracePool does). The instrument
// cost is one monotonic clock read per stage boundary — the warm path
// stays allocation-free, which alloc_test.go and the PF trajectory's
// telemetry column gate. Callers on the serving hot path use
// CompileObserved instead to avoid the option-closure heap allocation.
func WithTrace(tr *Trace) CompileOption {
	return func(cfg *compileConfig) { cfg.trace = tr }
}

// CostOnly skips emission: the call labels and reduces only, and the
// returned Output carries the derivation cost with empty assembly — the
// cheap path for experiments and cost probes.
func CostOnly() CompileOption {
	return func(cfg *compileConfig) { cfg.costOnly = true }
}

// WithWorkers runs this call's work across n goroutines sharing the
// selector's one engine (n <= 0 means GOMAXPROCS; 1 is sequential).
// CompileUnit spreads a unit's functions across the workers; Compile —
// and CompileUnit when functions are scarcer than workers — fans the
// labeling pass out inside each forest instead, labeling topological
// levels of nodes in parallel when the engine supports it (see
// reduce.ParallelLabeler; the automaton kinds do, DP does not). Results
// are identical to sequential compilation either way.
func WithWorkers(n int) CompileOption {
	return func(cfg *compileConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		cfg.workers = n
	}
}

// Compile selects instructions for f: label, reduce, emit (emission
// elided under CostOnly). It is the single forest-level entry point of the
// v2 surface; the legacy CompileMetered/SelectCost/SelectCostMetered
// methods are thin deprecated shims over it.
//
// Cancellation is cooperative: ctx is checked before labeling and then at
// reducer checkpoints every few hundred nodes, so a cancelled compile of
// an arbitrarily large forest returns ctx.Err() within a bounded amount of
// work. context.Background() costs nothing on the warm path.
func (s *Selector) Compile(ctx context.Context, f *Forest, opts ...CompileOption) (*Output, error) {
	cfg := resolveOpts(opts)
	return s.compile(ctx, f, &cfg)
}

// resolveOpts applies a call's options to a fresh config. Kept out of the
// callers so their cfg stays on the stack when no options are passed: the
// dynamic option calls happen against this function's own copy (which
// escape analysis must heap-allocate), so the common Compile(ctx, f) path
// allocates only its *Output.
func resolveOpts(opts []CompileOption) compileConfig {
	if len(opts) == 0 {
		return compileConfig{}
	}
	// cfg is declared on the options path only: its address reaches the
	// option closures, so it is heap-allocated — but just for calls that
	// actually pass options.
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (s *Selector) compile(ctx context.Context, f *Forest, cfg *compileConfig) (*Output, error) {
	if cfg.costOnly {
		cost, err := s.selectCostTraced(ctx, f, cfg.counters, cfg.workers, cfg.trace)
		if err != nil {
			return nil, err
		}
		return &Output{Cost: cost}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := cfg.trace
	lab, err := s.labelChecked(f, cfg.counters, cfg.workers)
	tr.Mark(telemetry.StageLabel)
	if err != nil {
		return nil, err
	}
	defer s.releaseLabeling(lab)
	em := s.emitters.Get().(*emit.Emitter)
	defer s.emitters.Put(em)
	em.Reset()
	// StageReduce includes the emission visitor callbacks the reducer
	// interleaves — splitting them out would need a per-node stamp the
	// warm path can't afford. StageEmit is finalization only: assembly
	// interning and instruction accounting.
	cost, err := s.rd.CoverContext(ctx, f, lab, em.Visitor(), cfg.counters)
	tr.Mark(telemetry.StageReduce)
	if err != nil {
		return nil, err
	}
	out := &Output{Asm: em.Asm(), Instructions: em.Instructions(), Cost: cost}
	tr.Mark(telemetry.StageEmit)
	return out, nil
}

// selectCost is the shared cost-only path: label + reduce, no emitter and
// no Output allocation, so a warm call allocates nothing at all.
func (s *Selector) selectCost(ctx context.Context, f *Forest, m *Counters) (Cost, error) {
	return s.selectCostWorkers(ctx, f, m, 0)
}

// selectCostWorkers is selectCost with optional level-parallel labeling.
func (s *Selector) selectCostWorkers(ctx context.Context, f *Forest, m *Counters, workers int) (Cost, error) {
	return s.selectCostTraced(ctx, f, m, workers, nil)
}

// selectCostTraced is the traced form: label and reduce stamps, no
// emit stage (cost-only calls elide emission).
func (s *Selector) selectCostTraced(ctx context.Context, f *Forest, m *Counters, workers int, tr *telemetry.Trace) (Cost, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	lab, err := s.labelChecked(f, m, workers)
	tr.Mark(telemetry.StageLabel)
	if err != nil {
		return 0, err
	}
	defer s.releaseLabeling(lab)
	cost, err := s.rd.CoverContext(ctx, f, lab, nil, m)
	tr.Mark(telemetry.StageReduce)
	return cost, err
}

// labelChecked labels f, converting the engine's typed state-budget panic
// (Options.MaxStates exceeded; see core.Config.MaxStates) into an error.
// Any other panic — a user dynamic-cost function blowing up — propagates
// to the caller's containment boundary unchanged.
func (s *Selector) labelChecked(f *Forest, m *Counters, workers int) (lab reduce.Labeling, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ErrStateBudget) {
				lab, err = nil, e
				return
			}
			panic(r)
		}
	}()
	return s.labelMetered(f, m, workers), nil
}

// CompileObserved is Compile with per-call counter attribution and
// trace stage stamps: the compilation server's hot path. Like the
// deprecated shims it constructs its config directly — no variadic
// slice, no option closures — which keeps the warm observed Compile at
// exactly the same allocations as the bare one (its one *Output).
// Either argument may be nil.
func (s *Selector) CompileObserved(ctx context.Context, f *Forest, m *Counters, tr *Trace) (*Output, error) {
	cfg := compileConfig{counters: m, trace: tr}
	return s.compile(ctx, f, &cfg)
}

// CompileMetered is Compile with per-call counter attribution.
//
// Deprecated: use Compile(ctx, f, WithCounters(m)).
func (s *Selector) CompileMetered(f *Forest, m *Counters) (*Output, error) {
	return s.compile(context.Background(), f, &compileConfig{counters: m})
}

// SelectCost labels and reduces without emitting, returning only the
// derivation cost. Warm, it allocates nothing: the labeling and the
// reducer's working set are pooled.
//
// Deprecated: use Compile(ctx, f, CostOnly()) and read Output.Cost.
func (s *Selector) SelectCost(f *Forest) (Cost, error) {
	return s.selectCost(context.Background(), f, nil)
}

// SelectCostMetered is SelectCost with per-call counter attribution.
//
// Deprecated: use Compile(ctx, f, CostOnly(), WithCounters(m)).
func (s *Selector) SelectCostMetered(f *Forest, m *Counters) (Cost, error) {
	return s.selectCost(context.Background(), f, m)
}

// releaseLabeling hands a labeling that Compile obtained internally back
// to the engine's pool, when the engine recycles labelings; for other
// engines the GC reclaims it. Labelings returned to API callers (Label)
// are never released here — they are caller-owned.
func (s *Selector) releaseLabeling(lab reduce.Labeling) {
	if rc, ok := s.eng.(reduce.LabelingRecycler); ok {
		rc.ReleaseLabeling(lab)
	}
}

// labelMetered labels through the engine's optional capabilities: with
// workers > 1 and a reduce.ParallelLabeler engine, the forest is labeled
// level-parallel; with a per-call sink and a MeteredLabeler engine,
// events attribute to m; otherwise the plain sequential path runs against
// the engine's configured sink.
func (s *Selector) labelMetered(f *Forest, m *Counters, workers int) reduce.Labeling {
	if workers > 1 {
		if pl, ok := s.eng.(reduce.ParallelLabeler); ok {
			return pl.LabelParallel(f, workers, m)
		}
	}
	if m != nil {
		if ml, ok := s.eng.(reduce.MeteredLabeler); ok {
			return ml.LabelMetered(f, m)
		}
	}
	return s.eng.Label(f)
}

// CompileUnit compiles every function of unit, returning one Output per
// function in unit order. With WithWorkers(n > 1) the functions are
// compiled across n goroutines sharing this selector (and therefore one
// engine) — the parallel compilation driver; outputs are identical to the
// sequential ones because engines guarantee the same labels regardless of
// worker interleaving (states are content-addressed). The first error by
// function order is returned.
//
// ctx is checked between functions (and inside each compile at the
// reducer checkpoints), so cancelling mid-unit stops promptly; queued
// functions fail with ctx.Err().
func (s *Selector) CompileUnit(ctx context.Context, u *Unit, opts ...CompileOption) ([]*Output, error) {
	cfg := resolveOpts(opts)
	return s.compileUnit(ctx, u, &cfg)
}

func (s *Selector) compileUnit(ctx context.Context, u *Unit, cfg *compileConfig) ([]*Output, error) {
	n := len(u.Funcs)
	workers := cfg.workers
	if workers > n {
		workers = n
	}
	// The per-function config: when the unit has fewer functions than
	// requested workers — one big function is the common case — the surplus
	// parallelism flows inward as level-parallel labeling of each forest
	// (see reduce.ParallelLabeler) instead of going idle. With enough
	// functions to occupy every worker, inner compiles label sequentially:
	// function-level parallelism already saturates the workers, and nested
	// fan-out would just multiply goroutines.
	inner := *cfg
	inner.workers = 0
	if cfg.workers > n {
		inner.workers = cfg.workers
	}
	if workers <= 1 {
		outs := make([]*Output, n)
		for i := range u.Funcs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := s.compile(ctx, u.Funcs[i].Forest, &inner)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
			}
			outs[i] = out
		}
		return outs, nil
	}
	outs := make([]*Output, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// The per-function checkpoint of the sequential loop:
				// after cancellation, remaining claims fail fast instead
				// of compiling.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				outs[i], errs[i] = s.compile(ctx, u.Funcs[i].Forest, &inner)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
		}
	}
	return outs, nil
}

// CompileUnitParallel compiles the functions of unit across workers
// goroutines sharing this selector.
//
// Deprecated: use CompileUnit(ctx, u, WithWorkers(workers)).
func (s *Selector) CompileUnitParallel(u *Unit, workers int) ([]*Output, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return s.compileUnit(context.Background(), u, &compileConfig{workers: workers})
}

// Snapshot is a point-in-time view of a selector's automaton warmth. The
// compilation server samples it over a session to report the paper's
// amortization story end to end: states and transitions climb while the
// automaton is cold and flatten as every client's trees hit warm tables.
type Snapshot struct {
	Kind        Kind
	States      int
	Transitions int
	MemoryBytes int
}

// Snapshot captures the selector's current automaton warmth. It is safe
// to call concurrently with compilation (the counts are monotonic and read
// atomically, though States and Transitions are sampled independently).
func (s *Selector) Snapshot() Snapshot {
	return Snapshot{
		Kind:        s.kind,
		States:      s.eng.NumStates(),
		Transitions: s.eng.NumTransitions(),
		MemoryBytes: s.eng.MemoryBytes(),
	}
}

// States reports the number of automaton states (materialized so far for
// KindOnDemand, total for KindStatic, 0 for KindDP).
func (s *Selector) States() int { return s.eng.NumStates() }

// Transitions reports memoized/tabulated transition entries (0 for DP).
func (s *Selector) Transitions() int { return s.eng.NumTransitions() }

// MemoryBytes estimates the engine's table footprint (0 for DP).
func (s *Selector) MemoryBytes() int { return s.eng.MemoryBytes() }

// AutomatonPersister is the optional engine capability behind
// SaveAutomaton/LoadAutomaton. Of the built-ins only the on-demand engine
// implements it (static tables are regenerated, DP has none).
type AutomatonPersister interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// SupportsPersistence reports whether the selector's engine can save and
// restore its automaton (see AutomatonPersister). Registry.SaveAll uses it
// to skip table-free engines instead of failing.
func (s *Selector) SupportsPersistence() bool {
	_, ok := s.eng.(AutomatonPersister)
	return ok
}

// SaveAutomaton persists the selector's automaton so a later run can
// start warm (see core.Engine.Save). It fails for engines that do not
// implement AutomatonPersister.
func (s *Selector) SaveAutomaton(w io.Writer) error {
	p, ok := s.eng.(AutomatonPersister)
	if !ok {
		return fmt.Errorf("repro: %s selectors do not support automaton persistence", s.kind)
	}
	return p.Save(w)
}

// LoadAutomaton restores a saved automaton into a freshly created
// selector for the same machine description. It must complete before the
// selector is shared across goroutines.
func (s *Selector) LoadAutomaton(r io.Reader) error {
	p, ok := s.eng.(AutomatonPersister)
	if !ok {
		return fmt.Errorf("repro: %s selectors do not support automaton persistence", s.kind)
	}
	return p.Load(r)
}
