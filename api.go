// Package repro is the public face of the reproduction of "Fast and
// Flexible Instruction Selection with On-Demand Tree-Parsing Automata"
// (Ertl, Casey, Gregg; PLDI 2006): BURS instruction selection with three
// interchangeable labeling engines —
//
//   - KindDP: iburg/lburg-style dynamic programming at selection time
//     (flexible, supports dynamic costs, slow per node);
//   - KindStatic: a burg-style offline automaton (fast per node, no
//     dynamic costs, tables built ahead of time);
//   - KindOnDemand: the paper's contribution — the automaton is built
//     lazily at selection time, giving (warm) static-automaton speed
//     *and* dynamic costs.
//
// Typical use:
//
//	m, _ := repro.LoadMachine("x86")
//	sel, _ := m.NewSelector(repro.KindOnDemand, repro.Options{})
//	unit, _ := m.CompileMinC(src)           // or m.ParseTree("ADD(REG[1], CNST[2])")
//	out, _ := sel.Compile(unit.Funcs[0].Forest)
//	fmt.Println(out.Asm, out.Cost)
//
// # Engines and the Labeler interface
//
// Every engine implements reduce.Labeler — Label plus the
// NumStates/NumTransitions/MemoryBytes table stats — and Selector
// dispatches exclusively through that interface. Engine kinds are bound
// by a constructor registry: RegisterEngine adds a fourth kind without
// touching any Selector code, which is how downstream experiments plug in
// engine variants.
//
// # Concurrency
//
// Selectors are safe for concurrent use: Compile, Label and SelectCost
// may be called from many goroutines sharing one selector. All built-in
// engines support concurrent labeling — the on-demand engine synchronizes
// its construct slow path internally (see package core), which is the
// paper's scenario extended to a parallel compilation server: one warm
// automaton serving every worker, each worker's misses warming the tables
// for all. CompileUnitParallel is the built-in driver for that shape;
// internal/server (fronted by cmd/iselserver) is the full compilation
// server built on it, using CompileMetered and Snapshot to attribute one
// shared engine's work to individual clients and to report automaton
// warmth over a session.
// Only selector-wide reconfiguration (LoadAutomaton) must be serialized
// against in-flight compilation.
package repro

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/emit"
	"repro/internal/frontend"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Re-exported core types, so API users can name them.
type (
	// Grammar is a validated, normal-form tree grammar.
	Grammar = grammar.Grammar
	// Cost is a rule or derivation cost.
	Cost = grammar.Cost
	// DynEnv binds dynamic-cost function names to implementations.
	DynEnv = grammar.DynEnv
	// DynNode is the node view dynamic-cost functions receive.
	DynNode = grammar.DynNode
	// Forest is a compilation unit of IR trees (or DAGs).
	Forest = ir.Forest
	// Node is an IR node.
	Node = ir.Node
	// Unit is a lowered MinC compilation unit.
	Unit = frontend.Unit
	// Counters are the deterministic work counters engines maintain.
	Counters = metrics.Counters
	// Builder constructs IR forests programmatically (trees, and DAGs via
	// NewDAGBuilder-style sharing through Machine.NewDAGBuilder).
	Builder = ir.Builder
	// Labeler is the engine interface every selector kind implements:
	// labeling plus automaton table statistics.
	Labeler = reduce.Labeler
)

// Inf is the infinite cost (rule not applicable).
const Inf = grammar.Inf

// Kind selects a labeling engine.
type Kind string

// The three engines of the paper's comparison.
const (
	KindDP       Kind = "dp"
	KindStatic   Kind = "static"
	KindOnDemand Kind = "ondemand"
)

// EngineConstructor builds a labeling engine for a machine. Constructors
// receive the full Options so engine-specific knobs (DeltaCap, ForceHash,
// Metrics) reach them without Selector knowing which engine wants what.
type EngineConstructor func(m *Machine, opt Options) (Labeler, error)

var (
	engineCtors = map[Kind]EngineConstructor{}
	engineKinds []Kind // registration order, for stable listings
)

// RegisterEngine binds kind to an engine constructor. Registering a kind
// twice panics: kinds are process-global identifiers. Call from an init
// function; registration is not synchronized against concurrent
// NewSelector calls.
func RegisterEngine(kind Kind, ctor EngineConstructor) {
	if _, dup := engineCtors[kind]; dup {
		panic(fmt.Sprintf("repro: engine kind %q registered twice", kind))
	}
	engineCtors[kind] = ctor
	engineKinds = append(engineKinds, kind)
}

func init() {
	RegisterEngine(KindDP, func(m *Machine, opt Options) (Labeler, error) {
		l, err := dp.New(m.Grammar, m.Env, opt.Metrics)
		if err != nil {
			return nil, err
		}
		return l, nil
	})
	RegisterEngine(KindStatic, func(m *Machine, opt Options) (Labeler, error) {
		a, err := automaton.Generate(m.Grammar, automaton.StaticConfig{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics,
		})
		if err != nil {
			return nil, err
		}
		return a, nil
	})
	RegisterEngine(KindOnDemand, func(m *Machine, opt Options) (Labeler, error) {
		e, err := core.New(m.Grammar, m.Env, core.Config{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics, ForceHash: opt.ForceHash,
		})
		if err != nil {
			return nil, err
		}
		return e, nil
	})
}

// Kinds lists the registered engine kinds in registration order (the
// three built-ins first).
func Kinds() []Kind { return append([]Kind(nil), engineKinds...) }

// Machine is a loaded machine description: grammar plus dynamic-cost
// bindings.
type Machine struct {
	Name    string
	Grammar *Grammar
	Env     DynEnv
}

// Machines lists the built-in machine descriptions.
func Machines() []string { return md.Names() }

// LoadMachine loads a built-in machine description by name
// ("x86", "mips", "sparc", "alpha", "jit64", "demo").
func LoadMachine(name string) (*Machine, error) {
	d, err := md.Load(name)
	if err != nil {
		return nil, err
	}
	return &Machine{Name: name, Grammar: d.Grammar, Env: d.Env}, nil
}

// NewMachine builds a machine from a burg-style grammar source and an
// environment for its dynamic-cost names (env may be nil if the grammar
// has none).
func NewMachine(name, grammarSrc string, env DynEnv) (*Machine, error) {
	g, err := grammar.Parse(grammarSrc)
	if err != nil {
		return nil, err
	}
	if _, err := env.Bind(g); err != nil {
		return nil, err
	}
	if name != "" {
		g.Name = name
	}
	return &Machine{Name: g.Name, Grammar: g, Env: env}, nil
}

// ParseTree parses textual IR trees (see ir.ParseTrees syntax) against the
// machine's operator vocabulary.
func (m *Machine) ParseTree(src string) (*Forest, error) {
	return ir.ParseTrees(m.Grammar, src)
}

// NewBuilder returns a tree builder over the machine's operators.
func (m *Machine) NewBuilder() *Builder { return ir.NewBuilder(m.Grammar) }

// NewDAGBuilder returns a builder that value-numbers pure subtrees, so
// structurally identical subtrees are shared (DAG construction).
func (m *Machine) NewDAGBuilder() *Builder { return ir.NewDAGBuilder(m.Grammar) }

// CompileMinC parses and lowers a MinC program to IR forests (one per
// function).
func (m *Machine) CompileMinC(src string) (*Unit, error) {
	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return frontend.Lower(prog, m.Grammar)
}

// CompileUnitParallel compiles every function of unit with sel across
// workers goroutines sharing sel's one engine — the compilation-server
// scenario: for the on-demand kind, every worker's misses warm the same
// automaton. See Selector.CompileUnitParallel for the semantics.
func (m *Machine) CompileUnitParallel(sel *Selector, unit *Unit, workers int) ([]*Output, error) {
	if sel.Machine() != m {
		return nil, fmt.Errorf("repro: selector belongs to machine %q, not %q", sel.Machine().Name, m.Name)
	}
	return sel.CompileUnitParallel(unit, workers)
}

// Options tunes selector construction.
type Options struct {
	// Metrics, when non-nil, receives the engine's event counts.
	Metrics *Counters
	// DeltaCap bounds relative costs in automaton states (default
	// automaton.DefaultDeltaCap). Only meaningful for the automaton kinds.
	DeltaCap Cost
	// ForceHash routes all on-demand transitions through the hash table
	// (the table-layout ablation). Only meaningful for KindOnDemand.
	ForceHash bool
}

// Selector is an instruction selector: a labeling engine plus the shared
// reducer and a pool of emitters. Selectors persist across Compile calls —
// for KindOnDemand that is the point: the automaton warms up over a
// compilation session. Selectors are safe for concurrent use (see the
// package documentation for the contract).
type Selector struct {
	kind    Kind
	machine *Machine
	m       *Counters

	eng reduce.Labeler
	rd  *reduce.Reducer
	// emitters recycles emit.Emitter instances across Compile calls.
	// Outputs are copied out before an emitter returns to the pool, so
	// per-call isolation is preserved.
	emitters sync.Pool
}

// NewSelector builds a selector of the given kind (any registered kind;
// see RegisterEngine).
//
// KindStatic fails for grammars with dynamic-cost rules — that is the
// limitation the paper lifts; use StripDynamic (via NewSelectorFixed) or
// KindOnDemand.
func (m *Machine) NewSelector(kind Kind, opt Options) (*Selector, error) {
	ctor, ok := engineCtors[kind]
	if !ok {
		return nil, fmt.Errorf("repro: unknown selector kind %q", kind)
	}
	rd, err := reduce.New(m.Grammar, m.Env, opt.Metrics)
	if err != nil {
		return nil, err
	}
	eng, err := ctor(m, opt)
	if err != nil {
		return nil, err
	}
	s := &Selector{kind: kind, machine: m, m: opt.Metrics, eng: eng, rd: rd}
	s.emitters.New = func() any { return emitterFor(m.Grammar) }
	return s, nil
}

// FixedMachine returns a copy of the machine with all dynamic-cost rules
// removed — the grammar an offline automaton can tabulate, and the
// baseline for the code-quality experiment.
func (m *Machine) FixedMachine() (*Machine, error) {
	g, err := m.Grammar.StripDynamic()
	if err != nil {
		return nil, err
	}
	return &Machine{Name: m.Name + ".fixed", Grammar: g, Env: nil}, nil
}

// Kind returns the selector's engine kind.
func (s *Selector) Kind() Kind { return s.kind }

// Machine returns the selector's machine.
func (s *Selector) Machine() *Machine { return s.machine }

// Labeler exposes the selector's engine through the common interface, for
// lower-level tooling and engine-specific type assertions.
func (s *Selector) Labeler() Labeler { return s.eng }

// Output is the result of compiling one forest.
type Output struct {
	// Asm is the emitted assembly text.
	Asm string
	// Instructions is the number of emitted instructions.
	Instructions int
	// Cost is the total cost of the selected derivation.
	Cost Cost
}

// Label runs only the labeling pass and returns the labeling for use with
// lower-level tooling. Most callers want Compile. The returned labeling is
// caller-owned: engines that implement reduce.LabelingRecycler will reuse
// its buffers if it is handed back via ReleaseLabeling, but keeping it is
// always safe.
func (s *Selector) Label(f *Forest) (reduce.Labeling, error) {
	return s.eng.Label(f), nil
}

// Compile selects instructions for f: label, reduce, emit.
func (s *Selector) Compile(f *Forest) (*Output, error) {
	return s.CompileMetered(f, nil)
}

// CompileMetered is Compile with per-call counter attribution: the
// labeling and reduction events of this one call are counted into m
// instead of the selector's configured Options.Metrics sink (nil m is
// plain Compile). m may be a fresh Counters per call; callers merge the
// deltas with Counters.Add. This is the session hook the compilation
// server (internal/server) uses to account one shared warm engine's work
// to individual clients.
func (s *Selector) CompileMetered(f *Forest, m *Counters) (*Output, error) {
	lab := s.labelMetered(f, m)
	defer s.releaseLabeling(lab)
	em := s.emitters.Get().(*emit.Emitter)
	defer s.emitters.Put(em)
	em.Reset()
	cost, err := s.rd.CoverMetered(f, lab, em.Visit, m)
	if err != nil {
		return nil, err
	}
	return &Output{Asm: em.Asm(), Instructions: em.Instructions(), Cost: cost}, nil
}

// SelectCost labels and reduces without emitting, returning only the
// derivation cost — the cheap path for experiments. Warm, it allocates
// nothing: the labeling and the reducer's working set are pooled.
func (s *Selector) SelectCost(f *Forest) (Cost, error) {
	return s.SelectCostMetered(f, nil)
}

// SelectCostMetered is SelectCost with per-call counter attribution (see
// CompileMetered).
func (s *Selector) SelectCostMetered(f *Forest, m *Counters) (Cost, error) {
	lab := s.labelMetered(f, m)
	defer s.releaseLabeling(lab)
	return s.rd.CoverMetered(f, lab, nil, m)
}

// releaseLabeling hands a labeling that Compile obtained internally back
// to the engine's pool, when the engine recycles labelings; for other
// engines the GC reclaims it. Labelings returned to API callers (Label)
// are never released here — they are caller-owned.
func (s *Selector) releaseLabeling(lab reduce.Labeling) {
	if rc, ok := s.eng.(reduce.LabelingRecycler); ok {
		rc.ReleaseLabeling(lab)
	}
}

// labelMetered labels through the engine's MeteredLabeler capability when
// a per-call sink is requested and the engine has one; otherwise it falls
// back to the plain engine sink.
func (s *Selector) labelMetered(f *Forest, m *Counters) reduce.Labeling {
	if m != nil {
		if ml, ok := s.eng.(reduce.MeteredLabeler); ok {
			return ml.LabelMetered(f, m)
		}
	}
	return s.eng.Label(f)
}

// CompileUnit compiles every function of unit in order, returning one
// Output per function.
func (s *Selector) CompileUnit(u *Unit) ([]*Output, error) {
	outs := make([]*Output, len(u.Funcs))
	for i := range u.Funcs {
		out, err := s.Compile(u.Funcs[i].Forest)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
		}
		outs[i] = out
	}
	return outs, nil
}

// CompileUnitParallel compiles the functions of unit across workers
// goroutines sharing this selector (and therefore one engine): the
// parallel compilation driver. workers <= 0 uses GOMAXPROCS. Outputs are
// indexed by function, identical to CompileUnit's — engines guarantee the
// same labels regardless of worker interleaving, because states are
// content-addressed. The first error (by function order) is returned.
func (s *Selector) CompileUnitParallel(u *Unit, workers int) ([]*Output, error) {
	n := len(u.Funcs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return s.CompileUnit(u)
	}
	outs := make([]*Output, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				outs[i], errs[i] = s.Compile(u.Funcs[i].Forest)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
		}
	}
	return outs, nil
}

// Snapshot is a point-in-time view of a selector's automaton warmth. The
// compilation server samples it over a session to report the paper's
// amortization story end to end: states and transitions climb while the
// automaton is cold and flatten as every client's trees hit warm tables.
type Snapshot struct {
	Kind        Kind
	States      int
	Transitions int
	MemoryBytes int
}

// Snapshot captures the selector's current automaton warmth. It is safe
// to call concurrently with compilation (the counts are monotonic and read
// atomically, though States and Transitions are sampled independently).
func (s *Selector) Snapshot() Snapshot {
	return Snapshot{
		Kind:        s.kind,
		States:      s.eng.NumStates(),
		Transitions: s.eng.NumTransitions(),
		MemoryBytes: s.eng.MemoryBytes(),
	}
}

// States reports the number of automaton states (materialized so far for
// KindOnDemand, total for KindStatic, 0 for KindDP).
func (s *Selector) States() int { return s.eng.NumStates() }

// Transitions reports memoized/tabulated transition entries (0 for DP).
func (s *Selector) Transitions() int { return s.eng.NumTransitions() }

// MemoryBytes estimates the engine's table footprint (0 for DP).
func (s *Selector) MemoryBytes() int { return s.eng.MemoryBytes() }

// AutomatonPersister is the optional engine capability behind
// SaveAutomaton/LoadAutomaton. Of the built-ins only the on-demand engine
// implements it (static tables are regenerated, DP has none).
type AutomatonPersister interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// SaveAutomaton persists the selector's automaton so a later run can
// start warm (see core.Engine.Save). It fails for engines that do not
// implement AutomatonPersister.
func (s *Selector) SaveAutomaton(w io.Writer) error {
	p, ok := s.eng.(AutomatonPersister)
	if !ok {
		return fmt.Errorf("repro: %s selectors do not support automaton persistence", s.kind)
	}
	return p.Save(w)
}

// LoadAutomaton restores a saved automaton into a freshly created
// selector for the same machine description. It must complete before the
// selector is shared across goroutines.
func (s *Selector) LoadAutomaton(r io.Reader) error {
	p, ok := s.eng.(AutomatonPersister)
	if !ok {
		return fmt.Errorf("repro: %s selectors do not support automaton persistence", s.kind)
	}
	return p.Load(r)
}
