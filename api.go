// Package repro is the public face of the reproduction of "Fast and
// Flexible Instruction Selection with On-Demand Tree-Parsing Automata"
// (Ertl, Casey, Gregg; PLDI 2006): BURS instruction selection with three
// interchangeable labeling engines —
//
//   - KindDP: iburg/lburg-style dynamic programming at selection time
//     (flexible, supports dynamic costs, slow per node);
//   - KindStatic: a burg-style offline automaton (fast per node, no
//     dynamic costs, tables built ahead of time);
//   - KindOnDemand: the paper's contribution — the automaton is built
//     lazily at selection time, giving (warm) static-automaton speed
//     *and* dynamic costs.
//
// Typical use:
//
//	m, _ := repro.LoadMachine("x86")
//	sel, _ := m.NewSelector(repro.KindOnDemand, repro.Options{})
//	unit, _ := m.CompileMinC(src)           // or m.ParseTree("ADD(REG[1], CNST[2])")
//	out, _ := sel.Compile(unit.Funcs[0].Forest)
//	fmt.Println(out.Asm, out.Cost)
//
// The packages under internal/ hold the substrates (grammar model, IR,
// engines, reducer, emitter, machine descriptions, MinC front end,
// workload corpus, experiment harness); this package wires them together.
package repro

import (
	"fmt"
	"io"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/frontend"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Re-exported core types, so API users can name them.
type (
	// Grammar is a validated, normal-form tree grammar.
	Grammar = grammar.Grammar
	// Cost is a rule or derivation cost.
	Cost = grammar.Cost
	// DynEnv binds dynamic-cost function names to implementations.
	DynEnv = grammar.DynEnv
	// DynNode is the node view dynamic-cost functions receive.
	DynNode = grammar.DynNode
	// Forest is a compilation unit of IR trees (or DAGs).
	Forest = ir.Forest
	// Node is an IR node.
	Node = ir.Node
	// Unit is a lowered MinC compilation unit.
	Unit = frontend.Unit
	// Counters are the deterministic work counters engines maintain.
	Counters = metrics.Counters
	// Builder constructs IR forests programmatically (trees, and DAGs via
	// NewDAGBuilder-style sharing through Machine.NewDAGBuilder).
	Builder = ir.Builder
)

// Inf is the infinite cost (rule not applicable).
const Inf = grammar.Inf

// Kind selects a labeling engine.
type Kind string

// The three engines of the paper's comparison.
const (
	KindDP       Kind = "dp"
	KindStatic   Kind = "static"
	KindOnDemand Kind = "ondemand"
)

// Kinds lists the engine kinds.
func Kinds() []Kind { return []Kind{KindDP, KindStatic, KindOnDemand} }

// Machine is a loaded machine description: grammar plus dynamic-cost
// bindings.
type Machine struct {
	Name    string
	Grammar *Grammar
	Env     DynEnv
}

// Machines lists the built-in machine descriptions.
func Machines() []string { return md.Names() }

// LoadMachine loads a built-in machine description by name
// ("x86", "mips", "sparc", "alpha", "jit64", "demo").
func LoadMachine(name string) (*Machine, error) {
	d, err := md.Load(name)
	if err != nil {
		return nil, err
	}
	return &Machine{Name: name, Grammar: d.Grammar, Env: d.Env}, nil
}

// NewMachine builds a machine from a burg-style grammar source and an
// environment for its dynamic-cost names (env may be nil if the grammar
// has none).
func NewMachine(name, grammarSrc string, env DynEnv) (*Machine, error) {
	g, err := grammar.Parse(grammarSrc)
	if err != nil {
		return nil, err
	}
	if _, err := env.Bind(g); err != nil {
		return nil, err
	}
	if name != "" {
		g.Name = name
	}
	return &Machine{Name: g.Name, Grammar: g, Env: env}, nil
}

// ParseTree parses textual IR trees (see ir.ParseTrees syntax) against the
// machine's operator vocabulary.
func (m *Machine) ParseTree(src string) (*Forest, error) {
	return ir.ParseTrees(m.Grammar, src)
}

// NewBuilder returns a tree builder over the machine's operators.
func (m *Machine) NewBuilder() *Builder { return ir.NewBuilder(m.Grammar) }

// NewDAGBuilder returns a builder that value-numbers pure subtrees, so
// structurally identical subtrees are shared (DAG construction).
func (m *Machine) NewDAGBuilder() *Builder { return ir.NewDAGBuilder(m.Grammar) }

// CompileMinC parses and lowers a MinC program to IR forests (one per
// function).
func (m *Machine) CompileMinC(src string) (*Unit, error) {
	prog, err := frontend.Parse(src)
	if err != nil {
		return nil, err
	}
	return frontend.Lower(prog, m.Grammar)
}

// Options tunes selector construction.
type Options struct {
	// Metrics, when non-nil, receives the engine's event counts.
	Metrics *Counters
	// DeltaCap bounds relative costs in automaton states (default
	// automaton.DefaultDeltaCap). Only meaningful for the automaton kinds.
	DeltaCap Cost
	// ForceHash routes all on-demand transitions through the hash table
	// (the table-layout ablation). Only meaningful for KindOnDemand.
	ForceHash bool
}

// Selector is an instruction selector: a labeling engine plus the shared
// reducer and emitter. Selectors persist across Compile calls — for
// KindOnDemand that is the point: the automaton warms up over a
// compilation session. Selectors are not safe for concurrent use.
type Selector struct {
	kind    Kind
	machine *Machine
	m       *Counters

	dpl *dp.Labeler
	st  *automaton.Static
	od  *core.Engine
	rd  *reduce.Reducer
}

// NewSelector builds a selector of the given kind.
//
// KindStatic fails for grammars with dynamic-cost rules — that is the
// limitation the paper lifts; use StripDynamic (via NewSelectorFixed) or
// KindOnDemand.
func (m *Machine) NewSelector(kind Kind, opt Options) (*Selector, error) {
	s := &Selector{kind: kind, machine: m, m: opt.Metrics}
	rd, err := reduce.New(m.Grammar, m.Env, opt.Metrics)
	if err != nil {
		return nil, err
	}
	s.rd = rd
	switch kind {
	case KindDP:
		l, err := dp.New(m.Grammar, m.Env, opt.Metrics)
		if err != nil {
			return nil, err
		}
		s.dpl = l
	case KindStatic:
		a, err := automaton.Generate(m.Grammar, automaton.StaticConfig{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics,
		})
		if err != nil {
			return nil, err
		}
		s.st = a
	case KindOnDemand:
		e, err := core.New(m.Grammar, m.Env, core.Config{
			DeltaCap: opt.DeltaCap, Metrics: opt.Metrics, ForceHash: opt.ForceHash,
		})
		if err != nil {
			return nil, err
		}
		s.od = e
	default:
		return nil, fmt.Errorf("repro: unknown selector kind %q", kind)
	}
	return s, nil
}

// FixedMachine returns a copy of the machine with all dynamic-cost rules
// removed — the grammar an offline automaton can tabulate, and the
// baseline for the code-quality experiment.
func (m *Machine) FixedMachine() (*Machine, error) {
	g, err := m.Grammar.StripDynamic()
	if err != nil {
		return nil, err
	}
	return &Machine{Name: m.Name + ".fixed", Grammar: g, Env: nil}, nil
}

// Kind returns the selector's engine kind.
func (s *Selector) Kind() Kind { return s.kind }

// Machine returns the selector's machine.
func (s *Selector) Machine() *Machine { return s.machine }

// Output is the result of compiling one forest.
type Output struct {
	// Asm is the emitted assembly text.
	Asm string
	// Instructions is the number of emitted instructions.
	Instructions int
	// Cost is the total cost of the selected derivation.
	Cost Cost
}

// Label runs only the labeling pass and returns the labeling for use with
// lower-level tooling. Most callers want Compile.
func (s *Selector) Label(f *Forest) (reduce.Labeling, error) {
	switch s.kind {
	case KindDP:
		return s.dpl.Label(f), nil
	case KindStatic:
		return s.st.Label(f, s.m), nil
	default:
		return s.od.Label(f), nil
	}
}

// Compile selects instructions for f: label, reduce, emit.
func (s *Selector) Compile(f *Forest) (*Output, error) {
	lab, err := s.Label(f)
	if err != nil {
		return nil, err
	}
	em := emitterFor(s.machine.Grammar)
	cost, err := s.rd.Cover(f, lab, em.Visit)
	if err != nil {
		return nil, err
	}
	return &Output{Asm: em.Asm(), Instructions: em.Instructions(), Cost: cost}, nil
}

// SelectCost labels and reduces without emitting, returning only the
// derivation cost — the cheap path for experiments.
func (s *Selector) SelectCost(f *Forest) (Cost, error) {
	lab, err := s.Label(f)
	if err != nil {
		return 0, err
	}
	return s.rd.Cover(f, lab, nil)
}

// States reports the number of automaton states (materialized so far for
// KindOnDemand, total for KindStatic, 0 for KindDP).
func (s *Selector) States() int {
	switch s.kind {
	case KindStatic:
		return s.st.NumStates()
	case KindOnDemand:
		return s.od.NumStates()
	}
	return 0
}

// Transitions reports memoized/tabulated transition entries (0 for DP).
func (s *Selector) Transitions() int {
	switch s.kind {
	case KindStatic:
		return s.st.NumTransitions()
	case KindOnDemand:
		return s.od.NumTransitions()
	}
	return 0
}

// MemoryBytes estimates the engine's table footprint (0 for DP).
func (s *Selector) MemoryBytes() int {
	switch s.kind {
	case KindStatic:
		return s.st.MemoryBytes()
	case KindOnDemand:
		return s.od.MemoryBytes()
	}
	return 0
}

// SaveAutomaton persists an on-demand selector's automaton so a later run
// can start warm (see core.Engine.Save). Only KindOnDemand supports it.
func (s *Selector) SaveAutomaton(w io.Writer) error {
	if s.kind != KindOnDemand {
		return fmt.Errorf("repro: SaveAutomaton requires an on-demand selector")
	}
	return s.od.Save(w)
}

// LoadAutomaton restores a saved automaton into a freshly created
// on-demand selector for the same machine description.
func (s *Selector) LoadAutomaton(r io.Reader) error {
	if s.kind != KindOnDemand {
		return fmt.Errorf("repro: LoadAutomaton requires an on-demand selector")
	}
	return s.od.Load(r)
}
