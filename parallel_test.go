package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro"
)

const parallelSrc = `
int a[64];
int fill(int n) {
	int i;
	for (i = 0; i < n; i += 1) { a[i] = i * 3; }
	return n;
}
int sum(int n) {
	int i;
	int s = 0;
	for (i = 0; i < n; i += 1) { s += a[i]; }
	return s;
}
int dot(int n) {
	int i;
	int s = 0;
	for (i = 0; i < n; i += 1) { s += a[i] * a[i]; }
	return s;
}
int max(int x, int y) {
	if (x < y) { return y; }
	return x;
}
`

// TestCompileUnitParallel: the parallel driver must produce exactly the
// outputs of sequential compilation, function by function, while sharing
// one warm on-demand engine across workers.
func TestCompileUnitParallel(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(parallelSrc)
	if err != nil {
		t.Fatal(err)
	}
	seqSel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seqSel.CompileUnit(context.Background(), unit)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 1, 2, 4} {
		parSel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := parSel.CompileUnit(context.Background(), unit, repro.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Asm != want[i].Asm || got[i].Cost != want[i].Cost ||
				got[i].Instructions != want[i].Instructions {
				t.Errorf("workers=%d func %d: parallel output differs from sequential", workers, i)
			}
		}
		if parSel.States() != seqSel.States() {
			t.Errorf("workers=%d: states %d != sequential %d", workers, parSel.States(), seqSel.States())
		}
	}

	// A selector from another machine must be rejected.
	other, err := repro.LoadMachine("mips")
	if err != nil {
		t.Fatal(err)
	}
	otherSel, err := other.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CompileUnitParallel(otherSel, unit, 2); err == nil {
		t.Error("expected machine-mismatch error")
	}
}

// TestSelectorConcurrentCompile: one selector, many goroutines, repeated
// Compile calls on the same forests — outputs must stay deterministic, a
// property the pooled emitters must not break.
func TestSelectorConcurrentCompile(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(parallelSrc)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sel.CompileUnit(context.Background(), unit)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := range unit.Funcs {
					out, err := sel.Compile(context.Background(), unit.Funcs[i].Forest)
					if err != nil {
						errc <- err
						return
					}
					if out.Asm != want[i].Asm || out.Cost != want[i].Cost {
						errc <- errMismatch(i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

type errMismatch int

func (e errMismatch) Error() string { return "concurrent Compile output mismatch" }

// TestCompileWithWorkersLevelParallel: Compile(f, WithWorkers(n)) labels
// the forest level-parallel on engines that support it, and must produce
// byte-identical outputs to the sequential compile — across the automaton
// kinds (which implement reduce.ParallelLabeler) and DP (which silently
// falls back to the sequential path).
func TestCompileWithWorkersLevelParallel(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	// One wide forest: many trees in one unit, so leaf-side levels carry
	// hundreds of independent nodes.
	unit, err := fixed.CompileMinC(parallelSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, kind := range []repro.Kind{repro.KindDP, repro.KindStatic, repro.KindOnDemand, repro.KindOffline} {
		sel, err := fixed.NewSelector(kind, repro.Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, fn := range unit.Funcs {
			want, err := sel.Compile(ctx, fn.Forest)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, fn.Name, err)
			}
			for _, workers := range []int{2, 4, 0} {
				got, err := sel.Compile(ctx, fn.Forest, repro.WithWorkers(workers))
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", kind, fn.Name, workers, err)
				}
				if got.Asm != want.Asm || got.Cost != want.Cost || got.Instructions != want.Instructions {
					t.Errorf("%s/%s workers=%d: level-parallel output differs from sequential", kind, fn.Name, workers)
				}
			}
		}
	}
}

// TestCompileUnitSurplusWorkersFlowInward: a unit with fewer functions
// than workers routes the surplus into level-parallel labeling instead of
// idling it; outputs must stay identical to sequential compilation.
func TestCompileUnitSurplusWorkersFlowInward(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(`
int one(int n) {
	int i;
	int s = 0;
	for (i = 0; i < n; i += 1) { s += i * i + n; }
	return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(unit.Funcs) != 1 {
		t.Fatalf("want a single-function unit, got %d", len(unit.Funcs))
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := sel.CompileUnit(ctx, unit)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sel.CompileUnit(ctx, unit, repro.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Asm != want[0].Asm || got[0].Cost != want[0].Cost {
		t.Error("single-function unit with surplus workers differs from sequential")
	}
}

// TestKindsRegistry: the built-ins are registered in declaration order
// (hybrid and offline, living in their own files, follow them — file
// init order is alphabetical), and every registered kind constructs
// through the registry on a fixed-cost grammar.
func TestKindsRegistry(t *testing.T) {
	kinds := repro.Kinds()
	if len(kinds) < 5 {
		t.Fatalf("kinds = %v, want the three built-ins plus hybrid and offline", kinds)
	}
	if kinds[0] != repro.KindDP || kinds[1] != repro.KindStatic || kinds[2] != repro.KindOnDemand ||
		kinds[3] != repro.KindHybrid || kinds[4] != repro.KindOffline {
		t.Errorf("registered kinds out of order: %v", kinds)
	}
	m, err := repro.LoadMachine("demo")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fixed.ParseTree("Store(Reg[1], Reg[2])")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range kinds {
		sel, err := fixed.NewSelector(kind, repro.Options{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sel.Labeler() == nil {
			t.Fatalf("%s: no engine behind the selector", kind)
		}
		if _, err := sel.Compile(context.Background(), f); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}
