//go:build race

package repro_test

// raceEnabled reports whether the race detector instruments this build.
// Under -race, sync.Pool deliberately drops a fraction of Put items, so
// the strict zero-allocation assertions cannot hold; the guard tests still
// execute their full code paths (for race coverage) but skip the counts.
const raceEnabled = true
