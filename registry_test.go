package repro_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/metrics"
)

// TestRegistryLazyConstruction: entries materialize exactly once, on
// first Get, and every caller shares the one selector.
func TestRegistryLazyConstruction(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("x86", repro.KindDP, repro.Options{}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "x86" || got[1] != "jit64" {
		t.Fatalf("names = %v", got)
	}
	if reg.DefaultName() != "x86" {
		t.Fatalf("default = %q, want x86", reg.DefaultName())
	}
	for _, st := range reg.Status() {
		if st.Constructed {
			t.Fatalf("%s constructed before first Get", st.Machine)
		}
	}

	// Concurrent first Gets race to construct; all must get one selector.
	const racers = 8
	sels := make([]*repro.Selector, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sel, err := reg.Get("x86")
			if err != nil {
				t.Error(err)
				return
			}
			sels[i] = sel
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if sels[i] != sels[0] {
			t.Fatal("concurrent Gets constructed different selectors")
		}
	}

	// "" resolves to the default machine.
	m, sel, err := reg.Get("")
	if err != nil || m.Name != "x86" || sel != sels[0] {
		t.Fatalf("default Get = %v/%v/%v", m, sel, err)
	}
	// jit64 still cold; x86 constructed.
	sts := reg.Status()
	if !sts[0].Constructed || sts[1].Constructed {
		t.Fatalf("status after one machine's traffic: %+v", sts)
	}
	if _, _, err := reg.Get("vax"); err == nil {
		t.Fatal("unknown machine must fail")
	}
}

// TestRegistryAddMachineAndSelector: custom machines (NewMachine) and
// prebuilt selectors register alongside built-ins.
func TestRegistryAddMachineAndSelector(t *testing.T) {
	reg := repro.NewRegistry()
	m, err := repro.NewMachine("tiny", `
%name tiny
%start r
%term K(0) P(2)
k: K (0) "=%c"
r: P(k, k) (1) "add %0, %1 -> %d"
r: k (1) "mov %0 -> %d"
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMachine(m, repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	got, sel, err := reg.Get("tiny")
	if err != nil || got != m {
		t.Fatalf("Get(tiny) = %v, %v", got, err)
	}
	f, err := m.ParseTree("P(K[1], K[2])")
	if err != nil {
		t.Fatal(err)
	}
	if out, err := sel.Compile(context.Background(), f); err != nil || out.Cost != 1 {
		t.Fatalf("compile through registry: %v, %v", out, err)
	}

	x86, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	pre, err := x86.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddSelector(pre); err != nil {
		t.Fatal(err)
	}
	_, sel2, err := reg.Get("x86")
	if err != nil || sel2 != pre {
		t.Fatal("AddSelector entry must return the prebuilt selector")
	}
	if st := reg.Status(); !st[1].Constructed {
		t.Fatal("AddSelector entry must be born constructed")
	}
}

// TestRegistryPersistence: SaveAll writes one automaton file per capable
// machine; a fresh registry over the same directory restores the tables
// at construction, so the restored selector labels with zero misses.
func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(`int f(int n) { int s = 0; int i; for (i = 0; i < n; i += 1) { s += i; } return s; }`)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest

	warm := repro.NewRegistry()
	warm.SetAutomatonDir(dir)
	if err := warm.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	// A DP machine rides along: SaveAll must skip it, not fail.
	if err := warm.Add("demo", repro.KindDP, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := warm.Warm("demo"); err != nil {
		t.Fatal(err)
	}
	_, sel, err := warm.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sel.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "jit64.automaton")); err != nil {
		t.Fatalf("no saved automaton: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "demo.automaton")); !os.IsNotExist(err) {
		t.Fatalf("DP machine must not persist an automaton: %v", err)
	}

	cold := repro.NewRegistry()
	cold.SetAutomatonDir(dir)
	if err := cold.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := cold.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	var cm metrics.Counters
	_, restored, err := cold.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Compile(context.Background(), f, repro.WithCounters(&cm))
	if err != nil {
		t.Fatal(err)
	}
	if got.Asm != want.Asm || got.Cost != want.Cost {
		t.Error("restored selector emits different code")
	}
	if cm.TableMisses != 0 {
		t.Errorf("restored selector had %d misses, want 0 (warm start)", cm.TableMisses)
	}
	// x86 has no saved file: constructs cold, still works.
	if err := cold.Warm("x86"); err != nil {
		t.Fatal(err)
	}

	// A corrupt file does not break the machine: it is quarantined
	// (renamed to .bad, logged) and construction falls back to cold
	// in-process tables.
	if err := os.WriteFile(filepath.Join(dir, "mips.automaton"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cold.Add("mips", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	var logged []string
	cold.SetLogger(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	mm, msel, err := cold.Get("mips")
	if err != nil {
		t.Fatalf("corrupt automaton file must fall back to cold construction, got %v", err)
	}
	mf, err := mm.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msel.Compile(context.Background(), mf); err != nil {
		t.Fatalf("cold-fallback selector must compile: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mips.automaton.bad")); err != nil {
		t.Errorf("corrupt file must be quarantined to mips.automaton.bad: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mips.automaton")); !os.IsNotExist(err) {
		t.Errorf("corrupt file must be moved aside, still present: %v", err)
	}
	if len(logged) == 0 {
		t.Error("quarantine must be logged")
	}
	for _, st := range cold.Status() {
		if st.Machine == "mips" && st.Err != "" {
			t.Errorf("quarantine recovery must not leave a sticky error: %s", st.Err)
		}
	}
}

// TestStateBudgetThroughAPI: Options.MaxStates turns unbounded automaton
// growth into a typed ErrStateBudget, while an ample budget never fires.
func TestStateBudgetThroughAPI(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}

	starved, err := m.NewSelector(repro.KindOnDemand, repro.Options{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := starved.Compile(context.Background(), f); !errors.Is(err, repro.ErrStateBudget) {
		t.Fatalf("starved compile = %v, want ErrStateBudget", err)
	}
	if starved.States() > 1 {
		t.Errorf("budget 1 but %d states materialized", starved.States())
	}
	// The selector survives: the same call keeps failing typed, not
	// panicking, and the budget does not corrupt the engine.
	if _, err := starved.Compile(context.Background(), f, repro.CostOnly()); !errors.Is(err, repro.ErrStateBudget) {
		t.Fatalf("second starved compile = %v, want ErrStateBudget", err)
	}

	ample, err := m.NewSelector(repro.KindOnDemand, repro.Options{MaxStates: 10000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ample.Compile(context.Background(), f)
	if err != nil || out.Asm == "" {
		t.Fatalf("ample budget compile: %v, %v", out, err)
	}
	// Warm traffic over existing states keeps working at the cap.
	if _, err := ample.Compile(context.Background(), f); err != nil {
		t.Fatalf("warm compile under budget: %v", err)
	}
}

// TestRegistryEvict: eviction resets an entry to unconstructed; the next
// Get rebuilds a fresh selector — the reset lever for capped automata.
func TestRegistryEvict(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	m, sel1, err := reg.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the selector so the rebuilt one is observably different.
	u, err := m.CompileMinC("int f(int a) { return a + 2; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel1.CompileUnit(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	if sel1.States() == 0 {
		t.Fatal("warmup constructed no states")
	}
	if err := reg.Evict("jit64"); err != nil {
		t.Fatal(err)
	}
	for _, st := range reg.Status() {
		if st.Machine == "jit64" && st.Constructed {
			t.Fatal("jit64 still constructed after Evict")
		}
	}
	_, sel2, err := reg.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if sel2 == sel1 {
		t.Fatal("Get after Evict returned the evicted selector")
	}
	if sel2.States() != 0 {
		t.Fatalf("rebuilt selector starts with %d states, want 0", sel2.States())
	}
	// The old selector must keep working for callers that still hold it.
	if _, err := sel1.CompileUnit(context.Background(), u); err != nil {
		t.Fatalf("evicted selector broke for an in-flight holder: %v", err)
	}

	if err := reg.Evict("nope"); !errors.Is(err, repro.ErrUnknownMachine) {
		t.Fatalf("Evict(unknown) = %v, want ErrUnknownMachine", err)
	}

	// With persistence configured, Evict is a true reset: the saved file
	// goes too, so reconstruction cannot restore the state being shed.
	dir := t.TempDir()
	preg := repro.NewRegistry()
	preg.SetAutomatonDir(dir)
	if err := preg.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	_, psel, err := preg.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := psel.CompileUnit(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	if err := preg.SaveAll(); err != nil {
		t.Fatal(err)
	}
	saved := filepath.Join(dir, "jit64.automaton")
	if _, err := os.Stat(saved); err != nil {
		t.Fatalf("SaveAll left no file: %v", err)
	}
	if err := preg.Evict("jit64"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(saved); !os.IsNotExist(err) {
		t.Fatalf("Evict left the persisted automaton behind (stat err = %v)", err)
	}
	_, fresh, err := preg.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.States() != 0 {
		t.Fatalf("post-evict reconstruction restored %d states, want a cold engine", fresh.States())
	}
	// AddSelector entries cannot be reconstructed, so they refuse.
	hand, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	handReg := repro.NewRegistry()
	if err := handReg.AddSelector(hand); err != nil {
		t.Fatal(err)
	}
	if err := handReg.Evict(hand.Machine().Name); !errors.Is(err, repro.ErrNotEvictable) {
		t.Fatalf("Evict(AddSelector entry) = %v, want ErrNotEvictable", err)
	}
}

// TestRegistryMaxMachinesLRU: with the cap armed, constructing machine
// N+1 evicts the least recently used constructed machine, and a
// re-requested evicted machine comes back.
func TestRegistryMaxMachinesLRU(t *testing.T) {
	reg := repro.NewRegistry()
	reg.SetMaxMachines(2)
	for _, name := range []string{"x86", "jit64", "mips"} {
		if err := reg.Add(name, repro.KindOnDemand, repro.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	constructed := func() []string {
		var live []string
		for _, st := range reg.Status() {
			if st.Constructed {
				live = append(live, st.Machine)
			}
		}
		return live
	}
	if err := reg.Warm("x86"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("jit64"); err != nil {
		t.Fatal(err)
	}
	if live := constructed(); len(live) != 2 {
		t.Fatalf("constructed = %v, want 2 machines", live)
	}
	// Touch x86 so jit64 is the LRU victim when mips constructs.
	if _, _, err := reg.Get("x86"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("mips"); err != nil {
		t.Fatal(err)
	}
	live := constructed()
	if len(live) != 2 || live[0] != "x86" || live[1] != "mips" {
		t.Fatalf("constructed after LRU eviction = %v, want [x86 mips]", live)
	}
	// The evicted machine reconstructs on demand (and evicts the LRU one).
	if _, _, err := reg.Get("jit64"); err != nil {
		t.Fatal(err)
	}
	live = constructed()
	if len(live) != 2 || live[0] != "jit64" || live[1] != "mips" {
		t.Fatalf("constructed after re-Get = %v, want [jit64 mips]", live)
	}
}
