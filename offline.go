package repro

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/automaton"
	"repro/internal/gen"
)

// KindOffline is the fourth engine kind: an automaton whose tables were
// computed ahead of time by the offline generator (internal/gen,
// fronted by cmd/iselgen) — the classic burg-style comparison point the
// paper argues against. It labels at pure table-lookup speed from the very
// first request (no construction ever happens under traffic) but cannot
// host dynamic-cost rules; serve a FixedMachine for grammars that have
// them.
//
// Tables resolve in order: Options.PreloadPath (a `.isel` blob written by
// iselgen — the instant-warm serving path behind `iselserver -preload`),
// then the process-global preload store (generated Go source compiled into
// the binary), and finally an in-process ahead-of-time compilation that is
// round-tripped through the wire format, so every offline engine — however
// constructed — runs tables that took the loading path.
const KindOffline Kind = "offline"

func init() {
	RegisterEngine(KindOffline, newOfflineEngine)
}

func newOfflineEngine(m *Machine, opt Options) (Labeler, error) {
	g := m.Grammar
	if g.HasAnyDynRules() {
		return nil, fmt.Errorf("repro: grammar %s has dynamic-cost rules; offline tables are impossible (use FixedMachine, or KindOnDemand — the engine the paper exists for)", g.Name)
	}
	a, err := offlineAutomaton(m, opt)
	if err != nil {
		return nil, err
	}
	a.SetMetrics(opt.Metrics)
	return a, nil
}

func offlineAutomaton(m *Machine, opt Options) (*automaton.Static, error) {
	g := m.Grammar
	if opt.PreloadPath != "" {
		f, err := os.Open(opt.PreloadPath)
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: %w", m.Name, err)
		}
		defer f.Close()
		a, err := gen.Load(g, f)
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: loading %s: %w", m.Name, opt.PreloadPath, err)
		}
		return a, nil
	}
	if blob, ok := gen.Lookup(gen.Fingerprint(g)); ok {
		a, err := gen.Load(g, bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: preloaded tables: %w", m.Name, err)
		}
		return a, nil
	}
	// No precompiled tables anywhere: compile the closure now, and take
	// the encode/decode round trip so in-process construction exercises
	// exactly the deserialization path served blobs take.
	res, err := gen.Compile(g, gen.Config{DeltaCap: opt.DeltaCap, MaxStates: opt.MaxStates})
	if err != nil {
		return nil, err
	}
	return gen.Load(g, bytes.NewReader(res.Blob))
}
