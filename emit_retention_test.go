// Cross-call retention guards for the emit arena/intern scheme: the
// strings a Compile returns must stay valid after the emitter that built
// them is recycled (Reset, arena reuse) by any number of subsequent
// Compile calls. The zero-alloc warm path hands out interned or copied
// strings, never views of pooled buffers — these tests would catch an
// aliasing bug by observing a returned Output mutate. The -race CI job
// runs them too, with concurrent compiles overlapping the re-reads.
package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro"
	"repro/internal/ir"
	"repro/internal/workload"
)

// compileCorpus compiles every forest once and returns the outputs.
func compileCorpus(t *testing.T, sel *repro.Selector, fs []*ir.Forest) []*repro.Output {
	t.Helper()
	ctx := context.Background()
	outs := make([]*repro.Output, len(fs))
	for i, f := range fs {
		out, err := sel.Compile(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	return outs
}

// TestCompileOutputSurvivesArenaRecycling: outputs captured early must be
// byte-identical after the selector's pooled emitters (and their arenas)
// have been recycled by many further compiles of different forests.
func TestCompileOutputSurvivesArenaRecycling(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(m.Grammar) {
		fs = append(fs, c.Forests()...)
	}

	first := compileCorpus(t, sel, fs)
	snapshots := make([]string, len(first))
	for i, out := range first {
		// Force a private copy of the bytes the Output currently shows, so
		// a later mutation of the original string's storage is detectable.
		snapshots[i] = string(append([]byte(nil), out.Asm...))
	}

	// Recycle hard: every emitter in the pool gets Reset and refilled with
	// other forests' text many times over.
	ctx := context.Background()
	for pass := 0; pass < 20; pass++ {
		for i := len(fs) - 1; i >= 0; i-- {
			if _, err := sel.Compile(ctx, fs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i, out := range first {
		if out.Asm != snapshots[i] {
			t.Fatalf("forest %d: retained Output.Asm changed after arena recycling\nwas:\n%s\nnow:\n%s",
				i, snapshots[i], out.Asm)
		}
	}
}

// TestCompileOutputRetentionUnderConcurrency is the -race variant:
// goroutines continuously recycle the emitter pool while others re-verify
// retained outputs. Any aliasing of returned strings onto pooled arenas
// shows up as a data race or a mismatch.
func TestCompileOutputRetentionUnderConcurrency(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(m.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	first := compileCorpus(t, sel, fs)
	snapshots := make([]string, len(first))
	for i, out := range first {
		snapshots[i] = string(append([]byte(nil), out.Asm...))
	}

	ctx := context.Background()
	const writers, checkers, passes = 4, 2, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < passes; pass++ {
				for i := range fs {
					if _, err := sel.Compile(ctx, fs[(i+w)%len(fs)]); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for pass := 0; pass < passes; pass++ {
				for i, out := range first {
					if out.Asm != snapshots[i] {
						t.Errorf("checker %d: forest %d output mutated mid-flight", c, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}
