// Cross-architecture matrix: one workload, five machine descriptions,
// five engines.
//
// The same MinC program is compiled for x86, mips, sparc, alpha and jit64
// with every engine that the grammar admits. The table shows that (a) the
// engines always agree on cost and instruction count, (b) the purely
// offline automata only participate after dynamic rules are stripped and
// then select worse code — while the hybrid engine keeps the dynamic
// rules and the dp-identical cost — and (c) per-node labeling work
// separates the engines exactly as the paper describes.
//
// Run with: go run ./examples/crossarch
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	prog, err := workload.Get("matmult")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%s)\n\n", prog.Name, prog.Note)
	fmt.Printf("%-7s %-10s %7s %7s %10s %8s\n", "machine", "engine", "cost", "instrs", "work/node", "states")

	for _, name := range []string{"x86", "mips", "sparc", "alpha", "jit64"} {
		m, err := repro.LoadMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		unit, err := m.CompileMinC(prog.Src)
		if err != nil {
			log.Fatal(err)
		}

		for _, kind := range repro.Kinds() {
			machine := m
			if kind == repro.KindStatic || kind == repro.KindOffline {
				// Offline automata (generated at construction or compiled
				// ahead of time by iselgen) cannot host the dynamic rules;
				// compare against the stripped grammar, like a burg user
				// would.
				machine, err = m.FixedMachine()
				if err != nil {
					log.Fatal(err)
				}
				unitFixed, err := machine.CompileMinC(prog.Src)
				if err != nil {
					log.Fatal(err)
				}
				report(name, string(kind)+"*", machine, unitFixed)
				continue
			}
			report(name, string(kind), machine, unit)
		}
		fmt.Println()
	}
	fmt.Println("* static and offline run the stripped (fixed-cost) grammar: offline tables cannot express")
	fmt.Println("  the dynamic rules, which is why their cost column is worse and why the paper builds")
	fmt.Println("  automata on demand.")
}

func report(machine, engine string, m *repro.Machine, unit *repro.Unit) {
	c := &metrics.Counters{}
	sel, err := m.NewSelector(repro.Kind(trimStar(engine)), repro.Options{Metrics: c})
	if err != nil {
		log.Fatal(err)
	}
	// Warm pass first so the on-demand column shows the steady state.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			c.Reset()
		}
		totalCost := repro.Cost(0)
		totalInstrs := 0
		for _, fn := range unit.Funcs {
			out, err := sel.Compile(context.Background(), fn.Forest)
			if err != nil {
				log.Fatalf("%s/%s: %v", machine, engine, err)
			}
			totalCost = totalCost.Add(out.Cost)
			totalInstrs += out.Instructions
		}
		if pass == 1 {
			fmt.Printf("%-7s %-10s %7d %7d %10.1f %8d\n",
				machine, engine, totalCost, totalInstrs, c.PerNode(), sel.States())
		}
	}
}

func trimStar(s string) string {
	if len(s) > 0 && s[len(s)-1] == '*' {
		return s[:len(s)-1]
	}
	return s
}
