// Distributed serving quickstart: a three-replica fleet behind the
// consistent-hash router, entirely in-process over loopback HTTP.
//
// The walk-through shows the cluster tier's three claims end to end:
//
//  1. Warm via the blob exchange: the fleet pays table generation once
//     per machine. Replicas boot serially; each machine's first ring
//     owner AOT-compiles its `.isel` blob and publishes it, every later
//     owner fetches it instead of compiling (watch the boot log).
//  2. The router fronts the fleet: /compile is proxied to the target
//     machine's ring owners, /readyz vouches for every shard, /stats
//     aggregates the fleet (per-client counters still sum exactly to
//     the global counters).
//  3. Failover: hard-kill a machine's primary owner mid-session and the
//     next request still succeeds — the router retries the buffered
//     request on the machine's next owner.
//
// Run with: go run ./examples/cluster
//
// Out of process, the same topology is three `iselserver -role replica`
// processes and one `iselserver -role router` (see README "Distributed
// serving").
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/server"
)

// booting answers 503 until the replica behind a listener exists — the
// listeners must be up first so the peers' URLs are known, and a
// still-booting member should look down, not hang.
type booting struct{ v atomic.Value }

type boxed struct{ h http.Handler }

func newBooting() *booting {
	b := &booting{}
	b.v.Store(boxed{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "booting", http.StatusServiceUnavailable)
	})})
	return b
}

func (b *booting) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.v.Load().(boxed).h.ServeHTTP(w, r)
}

func main() {
	machines := []string{"x86", "jit64", "mips"}
	const replicas, replication = 3, 2

	storeRoot, err := os.MkdirTemp("", "isel-cluster-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeRoot)

	// Open every listener first (answering 503), then boot replicas into
	// them serially — the deployment order that makes the exchange visible.
	fmt.Println("== booting the fleet ==")
	var handlers []*booting
	var servers []*httptest.Server
	var peers []string
	for i := 0; i < replicas; i++ {
		h := newBooting()
		handlers = append(handlers, h)
		servers = append(servers, httptest.NewServer(h))
		peers = append(peers, servers[i].URL)
	}
	var reps []*cluster.Replica
	for i := 0; i < replicas; i++ {
		i := i
		rep, err := cluster.NewReplica(cluster.ReplicaConfig{
			Self:        peers[i],
			Peers:       peers,
			Machines:    machines,
			Replication: replication,
			StoreDir:    filepath.Join(storeRoot, fmt.Sprintf("replica%d", i)),
			Server:      server.Config{Workers: 2},
			Logf: func(format string, args ...any) {
				fmt.Printf("  replica%d: %s\n", i, fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		reps = append(reps, rep)
		handlers[i].v.Store(boxed{rep.Handler()})
		defer rep.Shutdown()
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Peers: peers, Machines: machines, Replication: replication,
	})
	if err != nil {
		log.Fatal(err)
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// The router vouches for the whole fleet before any traffic.
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nrouter /readyz: %s (every shard has a warm owner)\n", resp.Status)

	fs := fleetStats(front.URL)
	fmt.Println("\n== shard map (machine -> ring owners) ==")
	for _, sh := range fs.Shards {
		fmt.Printf("  %-6s owners %v  warm %d/%d\n",
			sh.Machine, ownerIdx(peers, sh.Owners), len(sh.WarmOwners), len(sh.Owners))
	}

	// Compile through the router: the client never learns which replica
	// served it.
	fmt.Println("\n== compiling through the router ==")
	for _, m := range machines {
		out := compile(front.URL, m)
		fmt.Printf("  %-6s %d instructions, cost %d (tables: %d states)\n",
			m, out.Outputs[0].Instructions, out.Outputs[0].Cost, out.States)
	}

	// Hard-kill the primary owner of machines[0]; the router retries the
	// next request on the surviving owner.
	primary := fs.Shards[0].Owners[0]
	for i, p := range peers {
		if p == primary {
			fmt.Printf("\n== killing replica%d (primary owner of %s) ==\n", i, machines[0])
			servers[i].CloseClientConnections()
			servers[i].Close()
			reps[i].Shutdown()
			servers[i] = nil
		}
	}
	out := compile(front.URL, machines[0])
	fs = fleetStats(front.URL)
	fmt.Printf("  %s still compiles (%d instructions); router failovers: %d\n",
		machines[0], out.Outputs[0].Instructions, fs.Routing.Failovers)

	for _, s := range servers {
		if s != nil {
			s.Close()
		}
	}
	router.Stop()
}

func compile(base, machine string) *server.CompileResponse {
	body, _ := json.Marshal(server.CompileRequest{
		Client: "example", Trees: "ASGN(ADDRL[-8], ADD(REG[1], CNST[2]))",
	})
	resp, err := http.Post(base+"/compile?machine="+machine, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("compile on %s: %s", machine, resp.Status)
	}
	var out server.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return &out
}

func fleetStats(base string) *cluster.FleetStats {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var fs cluster.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		log.Fatal(err)
	}
	return &fs
}

// ownerIdx renders owner URLs as replicaN indices for readable output.
func ownerIdx(peers, owners []string) []string {
	var out []string
	for _, o := range owners {
		for i, p := range peers {
			if p == o {
				out = append(out, fmt.Sprintf("replica%d", i))
			}
		}
	}
	return out
}
