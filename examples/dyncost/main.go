// Dynamic costs: why they exist and what they cost each engine.
//
// Three vignettes:
//
//  1. Immediate ranges (mips): the same add selects addiu for a small
//     constant and a lui/ori sequence for a large one — decided at
//     instruction-selection time, per node.
//  2. Read-modify-write (x86): "g += 5" compiles to a single addq-to-
//     memory only because the load and store share the address node and
//     the dynamic check sees it.
//  3. The engine triangle: the offline automaton refuses the grammar
//     outright (burg's fundamental limitation), DP handles it slowly, the
//     on-demand automaton handles it at (warm) table-lookup speed with the
//     dynamic outcomes folded into the transition key.
//
// Run with: go run ./examples/dyncost
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
)

func main() {
	immediateRanges()
	readModifyWrite()
	engineTriangle()
}

func immediateRanges() {
	m, err := repro.LoadMachine("mips")
	if err != nil {
		log.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. immediate ranges on mips: ADD(REG[1], CNST[k])")
	for _, k := range []int64{5, 32767, 32768, 1 << 20} {
		f, err := m.ParseTree(fmt.Sprintf("RET(ADD(REG[1], CNST[%d]))", k))
		if err != nil {
			log.Fatal(err)
		}
		out, err := sel.Compile(context.Background(), f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-8d cost=%d\n%s", k, out.Cost, out.Asm)
	}
	fmt.Println()
}

func readModifyWrite() {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		log.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. read-modify-write on x86: g += 5 vs g = g2 + 5")
	unit, err := m.CompileMinC(`
int g;
int g2;
int f() {
	g += 5;
	g = g2 + 5;
	return g;
}`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sel.Compile(context.Background(), unit.Funcs[0].Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Asm)
	fmt.Printf("  (the first statement is one addq-to-memory; the second must load, add, store)\n\n")
}

func engineTriangle() {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. the engine triangle on the full (dynamic) x86 grammar:")

	// Offline automaton: impossible with dynamic rules.
	if _, err := m.NewSelector(repro.KindStatic, repro.Options{}); err != nil {
		fmt.Printf("  static:    %v\n", err)
	}
	// ... and possible only after stripping them (losing code quality).
	fixed, err := m.FixedMachine()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fixed.NewSelector(repro.KindStatic, repro.Options{}); err == nil {
		fmt.Printf("  static:    works on %s — with every dynamic rule stripped\n", fixed.Name)
	}

	unit, err := m.CompileMinC(`
int a[64];
int f(int n) {
	int i;
	for (i = 0; i < n; i += 1) { a[i] += i * 8; }
	return a[0];
}`)
	if err != nil {
		log.Fatal(err)
	}
	f := unit.Funcs[0].Forest
	for _, kind := range []repro.Kind{repro.KindDP, repro.KindOnDemand} {
		c := &metrics.Counters{}
		sel, err := m.NewSelector(kind, repro.Options{Metrics: c})
		if err != nil {
			log.Fatal(err)
		}
		out, err := sel.Compile(context.Background(), f) // cold
		if err != nil {
			log.Fatal(err)
		}
		c.Reset()
		if _, err := sel.Compile(context.Background(), f); err != nil { // warm
			log.Fatal(err)
		}
		fmt.Printf("  %-9s cost=%d warm work/node=%.1f (dyn evals/node=%.2f)\n",
			kind, out.Cost, c.PerNode(),
			float64(c.DynEvals)/float64(c.NodesLabeled))
	}
	fmt.Println("  both engines select identical code; only the labeling work differs")
}
