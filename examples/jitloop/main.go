// JIT loop: the scenario the paper targets.
//
// A JIT compiler cannot afford burg-style offline table generation (and
// loses dynamic costs if it tries), but pays for dynamic programming on
// every node of every method it ever compiles. The on-demand automaton
// splits the difference: the first methods pay a few state constructions,
// and labeling converges to pure table lookups.
//
// This example simulates a JIT session over the workload corpus: one
// persistent on-demand selector compiles method after method, and we watch
// states, misses and per-node work converge, then compare the session
// total against dynamic programming.
//
// Run with: go run ./examples/jitloop
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		log.Fatal(err)
	}

	counters := &metrics.Counters{}
	jit, err := m.NewSelector(repro.KindOnDemand, repro.Options{Metrics: counters})
	if err != nil {
		log.Fatal(err)
	}
	dpCounters := &metrics.Counters{}
	dpSel, err := m.NewSelector(repro.KindDP, repro.Options{Metrics: dpCounters})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("method-by-method JIT session (jit64, on-demand automaton):")
	fmt.Printf("%-24s %6s %8s %8s %10s\n", "method", "nodes", "states", "misses", "work/node")
	totalNodes := 0
	for _, p := range workload.All() {
		unit, err := m.CompileMinC(p.Src)
		if err != nil {
			log.Fatal(err)
		}
		for _, fn := range unit.Funcs {
			before := counters.Clone()
			if _, err := jit.Compile(context.Background(), fn.Forest); err != nil {
				log.Fatalf("%s.%s: %v", p.Name, fn.Name, err)
			}
			nodes := fn.Forest.NumNodes()
			totalNodes += nodes
			misses := counters.TableMisses - before.TableMisses
			work := float64(counters.WorkUnits()-before.WorkUnits()) / float64(nodes)
			fmt.Printf("%-24s %6d %8d %8d %10.1f\n",
				p.Name+"."+fn.Name, nodes, jit.States(), misses, work)

			// The DP baseline compiles the same method for comparison.
			if _, err := dpSel.Compile(context.Background(), fn.Forest); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("\nsession totals over %d IR nodes:\n", totalNodes)
	fmt.Printf("  on-demand: %s\n", counters)
	fmt.Printf("  dp:        %s\n", dpCounters)
	fmt.Printf("  work ratio dp/on-demand: %.2fx\n",
		float64(dpCounters.WorkUnits())/float64(counters.WorkUnits()))
	fmt.Printf("  automaton: %d states, %d transitions, ~%d bytes — built entirely on demand\n",
		jit.States(), jit.Transitions(), jit.MemoryBytes())
}
