// Quickstart: the smallest end-to-end use of the public API.
//
// It loads the literature's running-example machine description, selects
// instructions for the classic store-add-load tree with all three engines,
// and shows the read-modify-write rule firing on a DAG — the situation
// dynamic costs exist for, and the situation offline automata cannot
// handle but on-demand automata can.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	m, err := repro.LoadMachine("demo")
	if err != nil {
		log.Fatal(err)
	}

	// A tree: the store and load addresses are distinct nodes, so the
	// add-to-memory instruction may NOT be used.
	tree, err := m.ParseTree("Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tree input (distinct addresses):")
	for _, kind := range repro.Kinds() {
		sel, err := m.NewSelector(kind, repro.Options{})
		if err != nil {
			// The offline kinds (static, offline) must fail: the grammar
			// has a dynamic-cost rule.
			fmt.Printf("  %-9s %v\n", kind, err)
			continue
		}
		out, err := sel.Compile(context.Background(), tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s cost=%d instructions=%d\n", kind, out.Cost, out.Instructions)
	}

	// The same shape as a DAG: one shared address node. The dynamic cost
	// check passes and a single read-modify-write instruction is selected.
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dag := buildRMWDag(m)
	out, err := sel.Compile(context.Background(), dag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDAG input (shared address) with the on-demand automaton:\n")
	fmt.Printf("  cost=%d instructions=%d\n%s", out.Cost, out.Instructions, out.Asm)
	fmt.Printf("  automaton grew to %d states, %d transitions\n", sel.States(), sel.Transitions())
}

// buildRMWDag constructs Store(a, Plus(Load(a), v)) with a shared.
func buildRMWDag(m *repro.Machine) *repro.Forest {
	b := m.NewBuilder()
	a := b.Leaf("Reg", 1)
	v := b.Leaf("Reg", 2)
	root := b.Node("Store", a, b.Node("Plus", b.Node("Load", a), v))
	b.Root(root)
	return b.Finish()
}
