package repro_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/gen"
)

// captureLog wires a registry's logger into a concurrency-safe capture
// buffer and returns a reader over the lines logged so far.
func captureLog(reg *repro.Registry) func() []string {
	var mu sync.Mutex
	var lines []string
	reg.SetLogger(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

func statusOf(t *testing.T, reg *repro.Registry, name string) repro.MachineStatus {
	t.Helper()
	for _, st := range reg.Status() {
		if st.Machine == name {
			return st
		}
	}
	t.Fatalf("machine %q not in Status()", name)
	return repro.MachineStatus{}
}

// TestSwapVersionDrainAndRetire pins the swap lifecycle at the registry
// level: a lease acquired before the swap pins the old version in the
// draining set (resident, still compiling correctly) while new traffic
// resolves the new version; releasing the last lease fully retires it.
func TestSwapVersionDrainAndRetire(t *testing.T) {
	reg := repro.NewRegistry()
	reg.SetLogger(func(string, ...any) {})
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("x86"); err != nil {
		t.Fatal(err)
	}
	if st := statusOf(t, reg, "x86"); st.Version != 1 {
		t.Fatalf("fresh entry version = %d, want 1", st.Version)
	}

	old, err := reg.Acquire("x86")
	if err != nil {
		t.Fatal(err)
	}
	if old.Version != 1 {
		t.Fatalf("lease version = %d, want 1", old.Version)
	}
	tree, err := old.Machine.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Selector.Compile(context.Background(), tree); err != nil {
		t.Fatal(err)
	}

	if err := reg.Swap("x86"); err != nil {
		t.Fatal(err)
	}
	st := statusOf(t, reg, "x86")
	if st.Version != 2 {
		t.Fatalf("post-swap version = %d, want 2", st.Version)
	}
	if st.Draining != 1 {
		t.Fatalf("post-swap draining = %d, want 1 (our lease pins v1)", st.Draining)
	}

	// New acquisitions resolve the new version while the old lease keeps
	// compiling on its retired tables unharmed.
	fresh, err := reg.Acquire("x86")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version != 2 {
		t.Fatalf("fresh lease version = %d, want 2", fresh.Version)
	}
	if fresh.Selector == old.Selector {
		t.Fatal("swap must publish a new selector, not reuse the old one")
	}
	if _, err := old.Selector.Compile(context.Background(), tree); err != nil {
		t.Fatalf("draining version must keep compiling: %v", err)
	}
	fresh.Release()

	old.Release()
	old.Release() // idempotent
	if st := statusOf(t, reg, "x86"); st.Draining != 0 {
		t.Fatalf("draining = %d after the last v1 lease released, want 0", st.Draining)
	}

	if err := reg.Swap("x86"); err != nil {
		t.Fatal(err)
	}
	if st := statusOf(t, reg, "x86"); st.Version != 3 || st.Draining != 0 {
		t.Fatalf("after second swap: version = %d draining = %d, want 3 and 0 (no leases out)", st.Version, st.Draining)
	}
}

// TestEvictAndSwapConflictMidSwap holds a swap mid-construction (a hang
// fault on the blob load) and pins the conflict surface: Evict and a
// second Swap of the machine both fail with ErrSwapInProgress, the
// registry reports not-ready, and once the hang releases the swap lands
// normally.
func TestEvictAndSwapConflictMidSwap(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(t.TempDir(), "x86.isel")
	if err := os.WriteFile(blob, res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := repro.NewRegistry()
	reg.SetLogger(func(string, ...any) {})
	if err := reg.AddMachine(m, repro.KindHybrid, repro.Options{PreloadPath: blob}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Warm("x86"); err != nil { // consumes the boot blob load
		t.Fatal(err)
	}

	gate := make(chan struct{})
	defer faultinject.Arm(faultinject.GenLoad, faultinject.Fault{Hang: gate, Count: 1})()

	swapDone := make(chan error, 1)
	go func() { swapDone <- reg.Swap("x86") }()

	deadline := time.Now().Add(5 * time.Second)
	for !statusOf(t, reg, "x86").Swapping {
		if time.Now().After(deadline) {
			t.Fatal("swap never reached mid-construction")
		}
		time.Sleep(time.Millisecond)
	}

	if err := reg.Evict("x86"); !errors.Is(err, repro.ErrSwapInProgress) {
		t.Fatalf("Evict mid-swap = %v, want ErrSwapInProgress", err)
	}
	if err := reg.Swap("x86"); !errors.Is(err, repro.ErrSwapInProgress) {
		t.Fatalf("second Swap mid-swap = %v, want ErrSwapInProgress", err)
	}
	if err := reg.Ready(); err == nil || !strings.Contains(err.Error(), "mid-swap") {
		t.Fatalf("Ready mid-swap = %v, want a mid-swap error", err)
	}
	// The machine keeps serving its old version throughout.
	if _, _, err := reg.Get("x86"); err != nil {
		t.Fatalf("Get mid-swap = %v, the old version must keep serving", err)
	}

	close(gate)
	if err := <-swapDone; err != nil {
		t.Fatalf("swap after the hang released = %v", err)
	}
	st := statusOf(t, reg, "x86")
	if st.Version != 2 || st.Swapping {
		t.Fatalf("post-swap status = v%d swapping=%v, want v2 and false", st.Version, st.Swapping)
	}
	if err := reg.Ready(); err != nil {
		t.Fatalf("Ready after swap = %v", err)
	}
	if err := reg.Evict("x86"); err != nil {
		t.Fatalf("Evict after swap = %v", err)
	}
}

// TestFaultInjectGenLoadQuarantine drives the injected-corruption path
// through the real loader: an armed GenLoad fault makes the preload blob
// unloadable at construction, so the registry must quarantine it, log,
// and fall back to cold in-process tables — serving, not sticky-broken.
func TestFaultInjectGenLoadQuarantine(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(t.TempDir(), "x86.isel")
	if err := os.WriteFile(blob, res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := repro.NewRegistry()
	logged := captureLog(reg)
	if err := reg.AddMachine(m, repro.KindHybrid, repro.Options{PreloadPath: blob}); err != nil {
		t.Fatal(err)
	}

	defer faultinject.Arm(faultinject.GenLoad, faultinject.Fault{
		Err:   errors.New("injected: unreadable blob"),
		Count: 1,
	})()

	_, sel, err := reg.Get("x86")
	if err != nil {
		t.Fatalf("Get with an unloadable blob = %v, want cold fallback", err)
	}
	tree, err := m.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Compile(context.Background(), tree); err != nil {
		t.Fatalf("fallback selector compile = %v", err)
	}
	if got := faultinject.Fired(faultinject.GenLoad); got != 1 {
		t.Fatalf("fault fired %d times, want 1", got)
	}
	if _, err := os.Stat(blob + ".bad"); err != nil {
		t.Fatalf("blob must be quarantined to .bad: %v", err)
	}
	if _, err := os.Stat(blob); !os.IsNotExist(err) {
		t.Fatalf("original blob must be renamed away, stat = %v", err)
	}
	found := false
	for _, l := range logged() {
		if strings.Contains(l, "quarantined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine must be logged, got %q", logged())
	}
	if st := statusOf(t, reg, "x86"); st.Err != "" {
		t.Fatalf("sticky error %q after fallback, want none", st.Err)
	}
}

// TestReadyExpectWarm pins the readiness contract: a registry with an
// ExpectWarm machine is not ready until that machine is constructed, and
// a sticky construction failure keeps it permanently unready.
func TestReadyExpectWarm(t *testing.T) {
	reg := repro.NewRegistry()
	reg.SetLogger(func(string, ...any) {})
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Ready(); err != nil {
		t.Fatalf("Ready with no expectations = %v, want nil (lazy machines may warm on demand)", err)
	}
	if err := reg.ExpectWarm("x86"); err != nil {
		t.Fatal(err)
	}
	if err := reg.ExpectWarm("nope"); err == nil {
		t.Fatal("ExpectWarm of an unknown machine must fail")
	}
	if err := reg.Ready(); err == nil {
		t.Fatal("Ready before the expected machine warmed, want an error")
	}
	if err := reg.Warm("x86"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Ready(); err != nil {
		t.Fatalf("Ready after warm = %v", err)
	}
	// A swap preserves the expectation: post-swap the machine is warm
	// again, so readiness holds.
	if err := reg.Swap("x86"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Ready(); err != nil {
		t.Fatalf("Ready after swap = %v", err)
	}
}
