//go:build !race

package repro_test

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go.
const raceEnabled = false
