package repro_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/ir"
)

// writeHybridBlob compiles the fixed-operator-subset closure of m's FULL
// grammar and writes the `.isel` blob — what `iselgen -machine <m>
// -hybrid -out <path>` produces.
func writeHybridBlob(t *testing.T, m *repro.Machine, path string) {
	t.Helper()
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHybridRoundTrip is the dynamic-grammar counterpart of
// TestOfflineRoundTrip — the round-trip coverage gap this PR closes. For
// every machine description (every one of which has dynamic rules), a
// hybrid selector loading a generated `.isel` blob must be
// indistinguishable from one whose fixed-subset tables were compiled
// in-process, and from the on-demand engine — same labels, same costs,
// same emitted code, including on forests that cross the fixed/dynamic
// boundary.
func TestHybridRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range repro.Machines() {
		t.Run(name, func(t *testing.T) {
			m, err := repro.LoadMachine(name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name+".hyb.isel")
			writeHybridBlob(t, m, path)
			fromBlob, err := m.NewSelector(repro.KindHybrid, repro.Options{PreloadPath: path})
			if err != nil {
				t.Fatal(err)
			}
			inProc, err := m.NewSelector(repro.KindHybrid, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			onDemand, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if fromBlob.States() != inProc.States() {
				t.Fatalf("seeded states: blob %d, in-process %d", fromBlob.States(), inProc.States())
			}
			if fromBlob.States() == 0 {
				t.Fatal("hybrid engine seeded no offline states")
			}
			roots, inner, leaf := opSplit(m.Grammar)
			for seed := 0; seed < 50; seed++ {
				f := ir.RandomForest(m.Grammar, diffConfig(seed, roots, inner, leaf))
				labBlob, err := fromBlob.Label(f)
				if err != nil {
					t.Fatal(err)
				}
				labOD, err := onDemand.Label(f)
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range f.Nodes {
					for nt := 0; nt < m.Grammar.NumNonterms(); nt++ {
						if labBlob.RuleAt(n, grammar.NT(nt)) != labOD.RuleAt(n, grammar.NT(nt)) {
							t.Fatalf("seed %d node %d (%s) nt %d: blob-loaded hybrid disagrees with on-demand",
								seed, n.Index, m.Grammar.OpName(n.Op), nt)
						}
					}
				}
				outBlob, errBlob := fromBlob.Compile(context.Background(), f)
				outProc, errProc := inProc.Compile(context.Background(), f)
				outOD, errOD := onDemand.Compile(context.Background(), f)
				if (errBlob == nil) != (errOD == nil) || (errProc == nil) != (errOD == nil) {
					t.Fatalf("seed %d: blob err=%v in-process err=%v on-demand err=%v", seed, errBlob, errProc, errOD)
				}
				if errBlob != nil {
					continue
				}
				if outBlob.Asm != outOD.Asm || outBlob.Cost != outOD.Cost ||
					outProc.Asm != outOD.Asm || outProc.Cost != outOD.Cost {
					t.Fatalf("seed %d: hybrid output differs from on-demand", seed)
				}
			}
		})
	}
}

// TestHybridBlobCoverage pins down exactly what a hybrid blob serves
// offline and what falls through, at three levels: the overlay's tables
// per operator, the rule partition those tables imply, and the engine's
// observable growth under traffic on each side of the boundary. demo is
// the machine: its one dynamic rule (the read-modify-write memop guard)
// lives on Store, so Reg/Load/Plus are served offline and Store falls
// through.
func TestHybridBlobCoverage(t *testing.T) {
	m, err := repro.LoadMachine("demo")
	if err != nil {
		t.Fatal(err)
	}
	g := m.Grammar
	res, err := gen.CompileHybrid(g, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := automaton.NewHybridOverlay(g, res.Tables)
	if err != nil {
		t.Fatal(err)
	}

	// Level 1: the overlay carries tables for exactly the fixed operators.
	wantOffline := map[string]bool{"Reg": true, "Load": true, "Plus": true, "Store": false}
	for op := 0; op < g.NumOps(); op++ {
		name := g.OpName(grammar.OpID(op))
		want, known := wantOffline[name]
		if !known {
			t.Fatalf("unexpected operator %s in demo", name)
		}
		served := false
		switch g.Arity(grammar.OpID(op)) {
		case 0:
			served = ov.Leaf[op] >= 0
		case 1:
			served = ov.Dir1[op] != nil
		default:
			served = ov.Dir2[op] != nil
		}
		if served != want {
			t.Errorf("operator %s: served offline = %v, want %v", name, served, want)
		}
		if got := g.HasDynRules(grammar.OpID(op)); got == want {
			t.Errorf("operator %s: HasDynRules = %v contradicts the expected partition", name, got)
		}
	}

	// Level 2: the rule partition. A rule is answerable offline iff its
	// operator is fixed (chain rules ride along — they can never be
	// dynamic, the normalizer rejects that). For demo that is every rule
	// except the two Store rules (5 and the dynamic 6).
	for ri := range g.Rules {
		r := &g.Rules[ri]
		name := g.RuleName(ri)
		if r.IsChain {
			continue // chain rules live inside state vectors on both sides
		}
		offline := !g.HasDynRules(r.Op)
		if wantOffline[g.OpName(r.Op)] != offline {
			t.Errorf("rule %s (op %s): offline = %v contradicts the operator partition", name, g.OpName(r.Op), offline)
		}
	}

	// Level 3: observable behavior. Fixed-only traffic must not grow the
	// engine at all (every answer is an overlay load); the first dynamic
	// node must.
	sel, err := m.NewSelector(repro.KindHybrid, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := sel.Labeler().(*core.Hybrid)
	if !ok {
		t.Fatalf("hybrid selector engine is %T, want *core.Hybrid", sel.Labeler())
	}
	seeded := h.OfflineStates()
	if sel.States() != seeded {
		t.Fatalf("fresh hybrid has %d states, want the %d seeded", sel.States(), seeded)
	}
	trans0 := sel.Transitions()

	fixedOnly, err := m.ParseTree("Plus(Load(Reg[1]), Reg[2])")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Label(fixedOnly); err != nil {
		t.Fatal(err)
	}
	if sel.States() != seeded || sel.Transitions() != trans0 {
		t.Fatalf("fixed-only traffic grew the engine: %d -> %d states, %d -> %d transitions (want overlay-only answers)",
			seeded, sel.States(), trans0, sel.Transitions())
	}

	dynForest, err := m.ParseTree("Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Label(dynForest); err != nil {
		t.Fatal(err)
	}
	if sel.Transitions() == trans0 {
		t.Fatal("dynamic-operator traffic memoized nothing: the fallthrough path did not run")
	}

	// And the hybrid blob is NOT loadable as a full offline table set: the
	// static loader must reject the dynamic operators' placeholder rows.
	if _, err := gen.Load(g, bytes.NewReader(res.Blob)); err == nil {
		t.Fatal("static loader accepted a fixed-subset (hybrid) blob")
	}
}

// TestHybridFullyDynamicTypedError: a grammar whose every leaf operator
// is dynamic has no fixed closure; hybrid construction must fail with the
// typed ErrNoFixedClosure both when compiling in-process and when
// preloading a (necessarily empty) blob.
func TestHybridFullyDynamicTypedError(t *testing.T) {
	src := `
%name alldyn
%start stmt
%term L(0) S(1)

reg:  L      = 1 (dyn lc) "l%d"
stmt: S(reg) = 2 (1) "s %0"
`
	env := repro.DynEnv{"lc": func(n repro.DynNode) repro.Cost { return 1 }}
	m, err := repro.NewMachine("alldyn", src, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSelector(repro.KindHybrid, repro.Options{}); !errors.Is(err, repro.ErrNoFixedClosure) {
		t.Fatalf("in-process hybrid on a fully-dynamic grammar: err = %v, want ErrNoFixedClosure", err)
	}

	// Preload path: hand-encode the empty table set such a grammar would
	// produce and make sure the loader rejects it with the same typed
	// error instead of seeding a zero-state engine.
	g := m.Grammar
	ts := &automaton.TableSet{
		NumNT: g.NumNonterms(),
		Leaf:  make([]int32, g.NumOps()),
		NReps: make([][2]int32, g.NumOps()),
		Mu:    make([][2][]int32, g.NumOps()),
		T1:    make([][]int32, g.NumOps()),
		T2:    make([][]int32, g.NumOps()),
	}
	for op := range ts.Leaf {
		ts.Leaf[op] = -1
	}
	blob, err := gen.EncodeBytes(g, ts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alldyn.isel")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSelector(repro.KindHybrid, repro.Options{PreloadPath: path}); !errors.Is(err, repro.ErrNoFixedClosure) {
		t.Fatalf("preloaded empty blob: err = %v, want ErrNoFixedClosure", err)
	}
}

// TestHybridColdStartParallel: 8 workers hammer one COLD hybrid engine —
// every dynamic transition misses at once, exercising the overlay reads
// racing the engine's construct slow path — and the result must match a
// sequential reference compile. Run under -race in CI.
func TestHybridColdStartParallel(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(`
int f(int n) { int s = 0; int i; for (i = 0; i < n; i += 1) { s += i * 3; } return s; }
int g(int a, int b) { return a * b + a - b; }
int h(int x) { if (x > 10) { return x - 1; } return x + 1; }
`)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.NewSelector(repro.KindHybrid, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.CompileUnit(context.Background(), unit)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := m.NewSelector(repro.KindHybrid, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				outs, err := cold.CompileUnit(context.Background(), unit)
				if err != nil {
					errs[w] = err
					return
				}
				for i := range outs {
					if outs[i].Asm != want[i].Asm || outs[i].Cost != want[i].Cost {
						errs[w] = errors.New("parallel cold-start output differs from sequential")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if cold.States() < ref.States() {
		t.Fatalf("cold engine ended with %d states, reference has %d", cold.States(), ref.States())
	}
}

// fuzzArenas caches one hybrid+on-demand selector pair per dynamic-rule
// mask, so the fuzzer's throughput is spent on forests, not on recompiling
// 64 possible grammars.
var fuzzArenas sync.Map // uint8 -> *fuzzHybridArena

type fuzzHybridArena struct {
	m        *repro.Machine
	hybrid   *repro.Selector
	onDemand *repro.Selector
	err      error
}

// fuzzHybridMachine builds a small grammar whose rules carry dynamic
// costs according to mask (bit i = rule i+1 dynamic): seeded random
// grammars mixing fixed and dynamic rules, per the boundary fuzz target.
func fuzzHybridMachine(mask uint8) (*repro.Machine, error) {
	cost := func(bit uint, fixed string) string {
		if mask&(1<<bit) != 0 {
			return "(dyn vcost)"
		}
		return "(" + fixed + ")"
	}
	src := `
%name fuzzhyb
%start stmt
%term A(0) B(0) U(1) P(2) S(2)

reg:  A           = 1 ` + cost(0, "0") + ` "a%d"
reg:  B           = 2 ` + cost(1, "1") + ` "b%d"
reg:  U(reg)      = 3 ` + cost(2, "1") + ` "u %0, %d"
reg:  P(reg, reg) = 4 ` + cost(3, "1") + ` "p %0, %1, %d"
stmt: S(reg, reg) = 5 ` + cost(4, "1") + ` "s %0, %1"
stmt: U(reg)      = 6 ` + cost(5, "2") + ` "us %0"
`
	env := repro.DynEnv{"vcost": func(n repro.DynNode) repro.Cost {
		// Deterministic, node-dependent, occasionally inapplicable: the
		// shapes a real dynamic cost takes.
		v := n.Value()
		for i := 0; i < n.NumKids(); i++ {
			v += n.Kid(i).Value()
		}
		if v%7 == 0 {
			return repro.Inf
		}
		return repro.Cost(1 + v%4)
	}}
	return repro.NewMachine("fuzzhyb", src, env)
}

func fuzzArenaFor(mask uint8) *fuzzHybridArena {
	if a, ok := fuzzArenas.Load(mask); ok {
		return a.(*fuzzHybridArena)
	}
	a := &fuzzHybridArena{}
	a.m, a.err = fuzzHybridMachine(mask)
	if a.err == nil {
		a.hybrid, a.err = a.m.NewSelector(repro.KindHybrid, repro.Options{})
	}
	if a.err == nil {
		a.onDemand, a.err = a.m.NewSelector(repro.KindOnDemand, repro.Options{})
	}
	got, _ := fuzzArenas.LoadOrStore(mask, a)
	return got.(*fuzzHybridArena)
}

// FuzzHybridBoundary: across seeded random grammars mixing fixed and
// dynamic rules (mask) and seeded random forests, the hybrid engine's
// labels and SelectCost must equal the on-demand engine's node for node —
// the silent-divergence check on the fallthrough boundary. When every
// leaf rule is dynamic the hybrid must refuse with the typed error, never
// construct wrong.
func FuzzHybridBoundary(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(3))
	f.Add(uint8(1), int64(7), uint8(4))  // dynamic leaf A
	f.Add(uint8(8), int64(42), uint8(2)) // dynamic binary P
	f.Add(uint8(32), int64(9), uint8(5)) // dynamic stmt U
	f.Add(uint8(63), int64(3), uint8(1)) // everything dynamic
	f.Add(uint8(21), int64(100), uint8(6))
	f.Fuzz(func(t *testing.T, mask uint8, seed int64, shape uint8) {
		mask &= 63
		a := fuzzArenaFor(mask)
		if a.err != nil {
			if mask&3 == 3 && errors.Is(a.err, repro.ErrNoFixedClosure) {
				return // both leaves dynamic: the documented refusal
			}
			t.Fatalf("mask %06b: %v", mask, a.err)
		}
		g := a.m.Grammar
		cfg := ir.RandomConfig{
			Seed:       seed,
			Trees:      1 + int(shape%3),
			MaxDepth:   2 + int(shape/3%4),
			MaxLeafVal: 1 << (shape % 8),
		}
		if shape%5 == 0 {
			cfg.Share = true
			cfg.MaxLeafVal = 3
		}
		forest := ir.RandomForest(g, cfg)

		labH, err := a.hybrid.Label(forest)
		if err != nil {
			t.Fatalf("mask %06b seed %d: hybrid label: %v", mask, seed, err)
		}
		labO, err := a.onDemand.Label(forest)
		if err != nil {
			t.Fatalf("mask %06b seed %d: on-demand label: %v", mask, seed, err)
		}
		for _, n := range forest.Nodes {
			for nt := 0; nt < g.NumNonterms(); nt++ {
				if labH.RuleAt(n, grammar.NT(nt)) != labO.RuleAt(n, grammar.NT(nt)) {
					t.Fatalf("mask %06b seed %d node %d (%s) nt %d: hybrid rule %d != on-demand rule %d",
						mask, seed, n.Index, g.OpName(n.Op), nt,
						labH.RuleAt(n, grammar.NT(nt)), labO.RuleAt(n, grammar.NT(nt)))
				}
			}
		}
		costH, errH := a.hybrid.SelectCost(forest)
		costO, errO := a.onDemand.SelectCost(forest)
		if (errH == nil) != (errO == nil) {
			t.Fatalf("mask %06b seed %d: hybrid err=%v, on-demand err=%v", mask, seed, errH, errO)
		}
		if errH == nil && costH != costO {
			t.Fatalf("mask %06b seed %d: hybrid cost %d != on-demand cost %d", mask, seed, costH, costO)
		}
	})
}
