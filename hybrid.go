package repro

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/gen"
)

// KindHybrid is the fifth engine kind, closing the last cell in the
// paper's tradeoff matrix: fixed-operator transitions are answered from
// ahead-of-time tables expanded into direct state-id-indexed arrays
// (offline speed, warm before the first request) while dynamic-cost
// operators fall through to the on-demand engine's hash path — so
// grammars with dynamic rules, which KindOffline must reject outright, no
// longer pay full on-demand cost for their fixed majority. Both halves
// share one hash-consed state table, so a labeling that crosses the
// boundary is a single consistent automaton.Labeling.
//
// Tables resolve exactly like KindOffline's: Options.PreloadPath (a
// `.isel` blob written by `iselgen -hybrid` — or by plain iselgen for a
// fixed-only grammar, the two closures coincide there), then the
// process-global preload store, and finally an in-process fixed-subset
// compilation round-tripped through the wire format. The blob must carry
// the FULL grammar's fingerprint: stripped-grammar blobs are a different
// grammar (rules renumbered) and are rejected by the fingerprint check.
//
// Construction fails with an error matching gen.ErrNoFixedClosure when
// every leaf operator carries dynamic rules — such a grammar has no
// offline half, and KindOnDemand is the right engine.
const KindHybrid Kind = "hybrid"

// ErrNoFixedClosure is the typed error hybrid construction fails with for
// a grammar whose every leaf operator carries dynamic-cost rules (whether
// compiling in-process or preloading a blob): such a grammar has no
// offline half. Match with errors.Is and fall back to KindOnDemand.
var ErrNoFixedClosure = gen.ErrNoFixedClosure

func init() {
	RegisterEngine(KindHybrid, newHybridEngine)
}

func newHybridEngine(m *Machine, opt Options) (Labeler, error) {
	ov, err := hybridOverlay(m, opt)
	if err != nil {
		return nil, err
	}
	h, err := core.NewHybrid(m.Grammar, m.Env, core.Config{
		DeltaCap: opt.DeltaCap, Metrics: opt.Metrics, ForceHash: opt.ForceHash,
		MaxStates: opt.MaxStates,
	}, ov)
	if err != nil {
		return nil, fmt.Errorf("repro: machine %s: %w", m.Name, err)
	}
	return h, nil
}

// hybridOverlay resolves the fixed-subset tables the same way
// offlineAutomaton resolves full tables: explicit blob path, then the
// preload store, then an in-process compile taken through the
// encode/decode round trip so every hybrid engine runs tables that took
// the deserialization path.
func hybridOverlay(m *Machine, opt Options) (*automaton.HybridOverlay, error) {
	g := m.Grammar
	if opt.PreloadPath != "" {
		f, err := os.Open(opt.PreloadPath)
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: %w", m.Name, err)
		}
		defer f.Close()
		ov, err := gen.LoadHybrid(g, f)
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: loading %s: %w", m.Name, opt.PreloadPath, err)
		}
		return ov, nil
	}
	if blob, ok := gen.Lookup(gen.Fingerprint(g)); ok {
		ov, err := gen.LoadHybrid(g, bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("repro: machine %s: preloaded tables: %w", m.Name, err)
		}
		return ov, nil
	}
	res, err := gen.CompileHybrid(g, gen.Config{DeltaCap: opt.DeltaCap, MaxStates: opt.MaxStates})
	if err != nil {
		return nil, fmt.Errorf("repro: machine %s: %w", m.Name, err)
	}
	return gen.LoadHybrid(g, bytes.NewReader(res.Blob))
}
