// Root benchmarks: one testing.B entry per experiment table/figure (see
// DESIGN.md §3 and EXPERIMENTS.md). Work-unit tables come from
// cmd/iselbench; these benchmarks supply the wall-clock and allocation
// analogues (`go test -bench=. -benchmem`).
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/emit"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
	"repro/internal/workload"
)

// corpus caches lowered workloads per grammar name.
var corpusCache = map[string][]*ir.Forest{}

func corpus(b *testing.B, gname string) []*ir.Forest {
	b.Helper()
	if fs, ok := corpusCache[gname]; ok {
		return fs
	}
	d := md.MustLoad(gname)
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(d.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	corpusCache[gname] = fs
	return fs
}

func corpusNodes(fs []*ir.Forest) int {
	n := 0
	for _, f := range fs {
		n += f.NumNodes()
	}
	return n
}

// ---------------------------------------------------------------------------
// E1 — offline automaton generation cost (the price burg pays up front)

func benchStaticGen(b *testing.B, gname string) {
	d := md.MustLoad(gname)
	fixed, err := d.Grammar.StripDynamic()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := automaton.Generate(fixed, automaton.StaticConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if a.NumStates() == 0 {
			b.Fatal("no states")
		}
	}
}

func BenchmarkE1StaticGenDemo(b *testing.B)  { benchStaticGen(b, "demo") }
func BenchmarkE1StaticGenX86(b *testing.B)   { benchStaticGen(b, "x86") }
func BenchmarkE1StaticGenMips(b *testing.B)  { benchStaticGen(b, "mips") }
func BenchmarkE1StaticGenSparc(b *testing.B) { benchStaticGen(b, "sparc") }
func BenchmarkE1StaticGenAlpha(b *testing.B) { benchStaticGen(b, "alpha") }
func BenchmarkE1StaticGenJit64(b *testing.B) { benchStaticGen(b, "jit64") }

// ---------------------------------------------------------------------------
// E2/E3 — on-demand automaton construction over a whole corpus (cold)

func benchOnDemandBuild(b *testing.B, gname string) {
	d := md.MustLoad(gname)
	fs := corpus(b, gname)
	nodes := corpusNodes(fs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fs {
			e.Label(f)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func BenchmarkE2OnDemandBuildX86(b *testing.B)   { benchOnDemandBuild(b, "x86") }
func BenchmarkE2OnDemandBuildMips(b *testing.B)  { benchOnDemandBuild(b, "mips") }
func BenchmarkE2OnDemandBuildSparc(b *testing.B) { benchOnDemandBuild(b, "sparc") }
func BenchmarkE2OnDemandBuildAlpha(b *testing.B) { benchOnDemandBuild(b, "alpha") }
func BenchmarkE2OnDemandBuildJit64(b *testing.B) { benchOnDemandBuild(b, "jit64") }

// BenchmarkE3Convergence measures the cold pass including the state
// constructions the convergence curve records (same work as E2, kept as a
// named anchor for the figure).
func BenchmarkE3Convergence(b *testing.B) { benchOnDemandBuild(b, "x86") }

// ---------------------------------------------------------------------------
// E4 — labeling per node: dp vs warm on-demand vs static

func benchLabelDP(b *testing.B, gname string) {
	d := md.MustLoad(gname)
	fs := corpus(b, gname)
	nodes := corpusNodes(fs)
	l, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			l.Label(f)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func benchLabelOnDemandWarm(b *testing.B, gname string) {
	d := md.MustLoad(gname)
	fs := corpus(b, gname)
	nodes := corpusNodes(fs)
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs { // warm up
		e.ReleaseLabeling(e.LabelStates(f))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			// Release keeps the warm path allocation-free: the labeling's
			// buffers recycle through the engine's pool.
			e.ReleaseLabeling(e.LabelStates(f))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func benchLabelStatic(b *testing.B, gname string) {
	d := md.MustLoad(gname)
	fixed, err := d.Grammar.StripDynamic()
	if err != nil {
		b.Fatal(err)
	}
	a, err := automaton.Generate(fixed, automaton.StaticConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(fixed) {
		fs = append(fs, c.Forests()...)
	}
	nodes := corpusNodes(fs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			a.LabelStates(f)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func BenchmarkE4LabelDPX86(b *testing.B)            { benchLabelDP(b, "x86") }
func BenchmarkE4LabelDPMips(b *testing.B)           { benchLabelDP(b, "mips") }
func BenchmarkE4LabelDPSparc(b *testing.B)          { benchLabelDP(b, "sparc") }
func BenchmarkE4LabelDPAlpha(b *testing.B)          { benchLabelDP(b, "alpha") }
func BenchmarkE4LabelDPJit64(b *testing.B)          { benchLabelDP(b, "jit64") }
func BenchmarkE4LabelOnDemandWarmX86(b *testing.B)  { benchLabelOnDemandWarm(b, "x86") }
func BenchmarkE4LabelOnDemandWarmMips(b *testing.B) { benchLabelOnDemandWarm(b, "mips") }
func BenchmarkE4LabelOnDemandWarmJit64(b *testing.B) {
	benchLabelOnDemandWarm(b, "jit64")
}
func BenchmarkE4LabelStaticX86(b *testing.B)   { benchLabelStatic(b, "x86") }
func BenchmarkE4LabelStaticJit64(b *testing.B) { benchLabelStatic(b, "jit64") }

// ---------------------------------------------------------------------------
// The warm-path anchor: what one fully-warm compilation costs, end to end.
// This is the benchmark the PR-over-PR BENCH_PR*.json trajectory tracks
// (see cmd/iselbench -experiment PF). allocs/op is the headline: label and
// select are pooled end to end, so "label" and "select" must report ~0
// allocations; "compile" additionally pays the emit result arena (the
// returned assembly strings), which is the output, not overhead.

func BenchmarkOnDemandWarm(b *testing.B) {
	d := md.MustLoad("x86")
	fs := corpus(b, "x86")
	nodes := corpusNodes(fs)
	m := &repro.Machine{Name: "x86", Grammar: d.Grammar, Env: d.Env}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs { // warm: every transition constructed
		if _, err := sel.SelectCost(f); err != nil {
			b.Fatal(err)
		}
	}
	eng := sel.Labeler().(*core.Engine)
	b.Run("label", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range fs {
				eng.ReleaseLabeling(eng.LabelStates(f))
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
	})
	b.Run("select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range fs {
				if _, err := sel.SelectCost(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
	})
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range fs {
				if _, err := sel.Compile(context.Background(), f); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
	})
}

// ---------------------------------------------------------------------------
// E5 — the speedup figure's two bars, directly comparable

func BenchmarkE5SpeedupDPBar(b *testing.B)       { benchLabelDP(b, "x86") }
func BenchmarkE5SpeedupOnDemandBar(b *testing.B) { benchLabelOnDemandWarm(b, "x86") }

// ---------------------------------------------------------------------------
// E6 — dynamic-cost evaluation on the warm fast path

func BenchmarkE6DynamicFastPath(b *testing.B) {
	// sparc has the highest dynamic-rule density per node in the corpus.
	benchLabelOnDemandWarm(b, "sparc")
}

// ---------------------------------------------------------------------------
// E7 — end-to-end selection (label+reduce+emit), dynamic vs stripped

func benchCompile(b *testing.B, gname string, stripped bool) {
	d := md.MustLoad(gname)
	g := d.Grammar
	env := d.Env
	if stripped {
		fixed, err := g.StripDynamic()
		if err != nil {
			b.Fatal(err)
		}
		g, env = fixed, nil
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(g) {
		fs = append(fs, c.Forests()...)
	}
	e, err := core.New(g, env, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rd, err := reduce.New(g, env, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			em := emit.New(g)
			if _, err := rd.Cover(f, e.Label(f), em.Visit); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE7CompileDynX86(b *testing.B)   { benchCompile(b, "x86", false) }
func BenchmarkE7CompileFixedX86(b *testing.B) { benchCompile(b, "x86", true) }

// ---------------------------------------------------------------------------
// E8 — memory: allocations of building each automaton flavor

func BenchmarkE8MemoryStaticX86(b *testing.B) { benchStaticGen(b, "x86") }

func BenchmarkE8MemoryOnDemandX86(b *testing.B) { benchOnDemandBuild(b, "x86") }

// ---------------------------------------------------------------------------
// Ablation — dense direct-lookup arrays vs all-hash transition storage

func benchForceHash(b *testing.B, force bool) {
	d := md.MustLoad("x86")
	fs := corpus(b, "x86")
	nodes := corpusNodes(fs)
	e, err := core.New(d.Grammar, d.Env, core.Config{ForceHash: force})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs {
		e.ReleaseLabeling(e.LabelStates(f))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			e.ReleaseLabeling(e.LabelStates(f))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func BenchmarkAblationDenseLookup(b *testing.B) { benchForceHash(b, false) }
func BenchmarkAblationAllHash(b *testing.B)     { benchForceHash(b, true) }

// ---------------------------------------------------------------------------
// Parallel labeling — N workers sharing one warm on-demand engine (the
// compilation-server scenario; tracks the scalability of the lock-free
// fast path)

// labelPool labels every forest once across `workers` goroutines pulling
// from a shared atomic index — the worker-pool schedule both parallel
// benchmarks measure.
func labelPool(e *core.Engine, fs []*ir.Forest, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(fs) {
					return
				}
				e.ReleaseLabeling(e.LabelStates(fs[j]))
			}
		}()
	}
	wg.Wait()
}

func benchParallelLabel(b *testing.B, gname string, workers int) {
	d := md.MustLoad(gname)
	fs := corpus(b, gname)
	nodes := corpusNodes(fs)
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs { // warm up
		e.Label(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labelPool(e, fs, workers)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
	b.ReportMetric(float64(b.N*nodes)/b.Elapsed().Seconds()/1e6, "Mnodes/s")
}

func BenchmarkParallelLabel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchParallelLabel(b, "x86", w)
		})
	}
}

// benchParallelLabelCold is the cold-start-contention variant: every
// iteration starts a FRESH engine, so all workers hit the construct slow
// path at once. This is the case the per-operator mutex shards exist for:
// misses on different operators construct concurrently instead of
// serializing on one engine-global lock (visible only with GOMAXPROCS > 1;
// the warm benchmark above never takes a lock either way).
func benchParallelLabelCold(b *testing.B, gname string, workers int) {
	d := md.MustLoad(gname)
	fs := corpus(b, gname)
	nodes := corpusNodes(fs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		labelPool(e, fs, workers)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes), "ns/node")
}

func BenchmarkParallelLabelColdStart(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchParallelLabelCold(b, "x86", w)
		})
	}
}

// benchLevelParallelLabel measures the intra-forest fan-out: one wide
// forest partitioned into topological levels, each level's nodes labeled
// across `workers` goroutines against the shared warm engine (the big-unit
// latency case where the forest-granular pool above has nothing to fan
// over). Run with -cpu 1,4 to see the schedule under both a single P and
// real parallelism.
func benchLevelParallelLabel(b *testing.B, gname string, workers int) {
	d := md.MustLoad(gname)
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 7, Trees: 4000, MaxDepth: 8, MaxLeafVal: 3})
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	e.ReleaseLabeling(e.LabelStates(f)) // warm: every state and transition built
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ReleaseLabeling(e.LabelStatesParallel(f, workers, nil))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*f.NumNodes()), "ns/node")
}

func BenchmarkLevelParallelLabel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchLevelParallelLabel(b, "x86", w)
		})
	}
}
